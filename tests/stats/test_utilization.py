"""Tests for channel utilization reporting."""

import pytest

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.sim.kernel import Simulator
from repro.stats.utilization import (
    ChannelUtilization,
    measure_channel_utilization,
    snapshot_channel_utilization,
)
from repro.topology.mesh import Mesh2D


class TestChannelUtilization:
    def test_summary_statistics(self):
        report = ChannelUtilization(
            cycles=100, channels={(0, 1): 0.5, (1, 3): 0.1, (2, 0): 0.9}
        )
        assert report.mean == pytest.approx(0.5)
        assert report.peak == 0.9
        assert report.hottest(1) == [((2, 0), 0.9)]

    def test_empty_report_raises(self):
        with pytest.raises(ValueError):
            _ = ChannelUtilization(cycles=10).mean

    def test_format(self):
        report = ChannelUtilization(cycles=100, channels={(3, 1): 0.42})
        text = report.format()
        assert "0.420" in text and "east" in text


class TestMeasurement:
    @pytest.mark.parametrize("flavour", ["fr", "vc"])
    def test_utilization_tracks_offered_load(self, mesh4, flavour):
        if flavour == "fr":
            network = FRNetwork(
                FRConfig(data_buffers_per_input=6),
                mesh=mesh4,
                injection_rate=0.06,
                seed=3,
            )
        else:
            network = VCNetwork(
                VCConfig(), mesh=mesh4, injection_rate=0.06, seed=3
            )
        simulator = Simulator(network)
        simulator.step(400)  # warm
        report = measure_channel_utilization(network, simulator, cycles=600)
        assert 0.0 < report.mean < 1.0
        assert report.peak <= 1.0
        # Mesh edges exist for every connected port: 4x4 has 48 channels.
        assert len(report.channels) == 48

    def test_heavier_load_higher_utilization(self, mesh4):
        reports = []
        for rate in (0.02, 0.10):
            network = FRNetwork(
                FRConfig(data_buffers_per_input=6),
                mesh=mesh4,
                injection_rate=rate,
                seed=3,
            )
            simulator = Simulator(network)
            simulator.step(400)
            reports.append(measure_channel_utilization(network, simulator, 600))
        assert reports[1].mean > reports[0].mean

    def test_snapshot_uses_lifetime_counters(self, mesh4):
        network = FRNetwork(
            FRConfig(data_buffers_per_input=6), mesh=mesh4, injection_rate=0.05, seed=3
        )
        simulator = Simulator(network)
        simulator.step(500)
        report = snapshot_channel_utilization(network, cycles_observed=500)
        assert report.mean > 0
