"""Calibration against the paper's headline numbers (Sections 4.1-4.4).

These run on the paper's 8x8 mesh with the quick preset, so tolerances are
generous; EXPERIMENTS.md records tighter standard-preset measurements.
"""

import pytest

from repro.baselines.vc.config import VC8, VC16
from repro.core.config import FR6
from repro.harness.experiment import run_experiment
from repro.harness.saturation import measure_throughput


class TestFastControlBaseLatency:
    def test_vc_base_latency_near_32(self):
        result = run_experiment(VC8, 0.05, seed=2, preset="quick")
        assert result.mean_latency == pytest.approx(32, abs=4)

    def test_fr_base_latency_near_27(self):
        result = run_experiment(FR6, 0.05, seed=2, preset="quick")
        assert result.mean_latency == pytest.approx(27, abs=3)

    def test_fr_cuts_latency_vs_vc(self):
        """The paper's 15.6% base-latency saving: FR removes routing and
        arbitration from the data path."""
        fr = run_experiment(FR6, 0.05, seed=2, preset="quick").mean_latency
        vc = run_experiment(VC8, 0.05, seed=2, preset="quick").mean_latency
        saving = (vc - fr) / vc
        assert 0.08 < saving < 0.25


class TestLatencyAt50Percent:
    def test_table3_fast_control_row(self):
        """Paper: FR6 33 cycles, VC8 39 cycles at 50% capacity."""
        fr = run_experiment(FR6, 0.50, seed=2, preset="quick").mean_latency
        vc = run_experiment(VC8, 0.50, seed=2, preset="quick").mean_latency
        assert fr == pytest.approx(33, abs=4)
        assert vc == pytest.approx(39, abs=5)
        assert fr < vc


class TestSaturationThroughput:
    def test_vc8_saturates_before_fr6(self):
        """Paper: VC8 63%, FR6 77% -- at 72% offered, FR6 still delivers in
        full while VC8 has fallen off."""
        fr_accepted = measure_throughput(FR6, 0.72, seed=2, preset="quick")
        vc_accepted = measure_throughput(VC8, 0.72, seed=2, preset="quick")
        assert fr_accepted > 0.68
        assert vc_accepted < 0.68
        assert fr_accepted > vc_accepted

    def test_fr6_approaches_vc16(self):
        """Paper: FR6 (77%) approaches VC16 (80%) with 10 fewer buffers."""
        fr6 = measure_throughput(FR6, 0.76, seed=2, preset="quick")
        vc16 = measure_throughput(VC16, 0.76, seed=2, preset="quick")
        assert fr6 == pytest.approx(vc16, abs=0.06)


class TestLeadingControl:
    def test_base_latencies_equal_with_one_cycle_lead(self):
        """Paper Figure 9: FR with a 1-cycle lead has the same base latency
        as VC on 1-cycle wires (about 15 cycles)."""
        fr = run_experiment(
            FR6.with_leading_control(1), 0.05, seed=2, preset="quick"
        ).mean_latency
        vc = run_experiment(
            VC8.with_unit_links(), 0.05, seed=2, preset="quick"
        ).mean_latency
        assert fr == pytest.approx(15, abs=3)
        assert vc == pytest.approx(15, abs=3)
        assert abs(fr - vc) < 2.5

    def test_fr_faster_under_load_with_leading_control(self):
        """Paper: at 50% capacity FR6 is ~19 cycles vs VC8's ~21."""
        fr = run_experiment(
            FR6.with_leading_control(1), 0.50, seed=2, preset="quick"
        ).mean_latency
        vc = run_experiment(
            VC8.with_unit_links(), 0.50, seed=2, preset="quick"
        ).mean_latency
        assert fr < vc

    def test_data_flit_latency_drops_with_large_lead(self):
        """Paper: with control leading by >= 10 cycles the base per-flit
        data latency falls to ~6 cycles (pure wire time, zero router time)."""
        result = run_experiment(
            FR6.with_leading_control(10), 0.03, seed=2, preset="quick"
        )
        assert result.extras["mean_data_flit_latency"] == pytest.approx(6.3, abs=1.5)
