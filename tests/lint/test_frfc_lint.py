"""Tests for frfc-lint: each rule fires on its hazard and respects suppression."""

import importlib.util
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    Finding,
    LintConfigurationError,
    iter_python_files,
    lint_paths,
    lint_source,
    suppressed_rules_by_line,
)


REPO = Path(__file__).resolve().parents[2]


def load_cli():
    """Import tools/frfc_lint.py by file path (tools/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "frfc_lint_cli", REPO / "tools" / "frfc_lint.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def lint(snippet, path="src/repro/harness/fake.py"):
    """Lint a snippet; the default path sits outside the D005 subpackages so
    each test isolates the rule it targets."""
    return lint_source(textwrap.dedent(snippet), path)


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


class TestD001AmbientNondeterminism:
    def test_import_random_flagged(self):
        findings = lint("import random\n")
        assert rule_ids(findings) == ["D001"]
        assert "repro.sim.rng" in findings[0].message

    def test_from_random_import_flagged(self):
        assert rule_ids(lint("from random import shuffle\n")) == ["D001"]

    def test_wall_clock_call_flagged(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert "D001" in rule_ids(findings)
        assert any("time.time" in finding.message for finding in findings)

    def test_datetime_now_flagged(self):
        findings = lint(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        )
        assert "D001" in rule_ids(findings)

    def test_wall_clock_import_flagged(self):
        assert "D001" in rule_ids(lint("from time import monotonic\n"))

    def test_deterministic_code_clean(self):
        findings = lint(
            """
            from repro.sim.rng import DeterministicRng

            def draw(rng: DeterministicRng) -> int:
                return rng.randint(0, 4)
            """,
            path="src/repro/harness/fake.py",
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            "import random  # frfc-lint: disable=D001 -- sanctioned wrapper\n"
        )
        assert findings == []

    def test_non_wall_clock_time_use_clean(self):
        # time.sleep does not make *results* time-dependent; D001 targets reads.
        findings = lint(
            """
            import time

            def pause():
                time.sleep(0.1)
            """
        )
        assert rule_ids(findings) == []


class TestD002BareSetIteration:
    def test_for_over_set_literal_flagged(self):
        findings = lint(
            """
            def walk():
                for port in {1, 2, 3}:
                    use(port)
            """
        )
        assert rule_ids(findings) == ["D002"]

    def test_comprehension_over_set_call_flagged(self):
        findings = lint(
            """
            def walk(ports):
                return [p for p in set(ports)]
            """
        )
        assert rule_ids(findings) == ["D002"]

    def test_set_algebra_flagged(self):
        findings = lint(
            """
            def walk(a, b):
                for port in set(a) | set(b):
                    use(port)
            """
        )
        assert rule_ids(findings) == ["D002"]

    def test_sorted_set_clean(self):
        findings = lint(
            """
            def walk(ports):
                for port in sorted(set(ports)):
                    use(port)
            """
        )
        assert findings == []

    def test_list_iteration_clean(self):
        findings = lint(
            """
            def walk(ports):
                for port in list(ports):
                    use(port)
            """
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            """
            def walk():
                for port in {1, 2}:  # frfc-lint: disable=D002
                    use(port)
            """
        )
        assert findings == []


class TestD003ErrorsCarryMessages:
    def test_bare_raise_class_flagged(self):
        findings = lint(
            """
            class BufferPoolError(Exception):
                pass

            def fail():
                raise BufferPoolError
            """
        )
        assert rule_ids(findings) == ["D003"]

    def test_empty_call_flagged(self):
        findings = lint(
            """
            def fail():
                raise ValueError()
            """
        )
        assert rule_ids(findings) == ["D003"]

    def test_violation_suffix_covered(self):
        findings = lint(
            """
            def fail():
                raise InvariantViolation()
            """
        )
        assert rule_ids(findings) == ["D003"]

    def test_raise_with_message_clean(self):
        findings = lint(
            """
            def fail(node):
                raise ValueError(f"router {node} leaked a credit")
            """
        )
        assert findings == []

    def test_reraise_clean(self):
        findings = lint(
            """
            def fail():
                try:
                    pass
                except ValueError:
                    raise
            """
        )
        assert findings == []

    def test_non_error_exception_ignored(self):
        assert lint("def f():\n    raise StopIteration\n") == []

    def test_suppressed(self):
        findings = lint(
            """
            def fail():
                raise ValueError()  # frfc-lint: disable=D003
            """
        )
        assert findings == []


class TestD004MutableDefaults:
    # Snippets use a harness/ path so D005 (annotation coverage) stays out
    # of the way and each assertion isolates D004.
    PATH = "src/repro/harness/fake.py"

    def test_list_literal_default_flagged(self):
        findings = lint("def f(history=[]):\n    return history\n", path=self.PATH)
        assert rule_ids(findings) == ["D004"]
        assert "history" in findings[0].message

    def test_dict_call_default_flagged(self):
        findings = lint("def f(cache=dict()):\n    return cache\n", path=self.PATH)
        assert rule_ids(findings) == ["D004"]

    def test_kwonly_default_flagged(self):
        findings = lint("def f(*, slots=set()):\n    return slots\n", path=self.PATH)
        assert rule_ids(findings) == ["D004"]

    def test_lambda_default_flagged(self):
        findings = lint("g = lambda table={}: table\n", path=self.PATH)
        assert rule_ids(findings) == ["D004"]

    def test_none_default_clean(self):
        assert lint("def f(history=None):\n    return history\n", path=self.PATH) == []

    def test_tuple_default_clean(self):
        assert lint("def f(ports=(1, 2)):\n    return ports\n", path=self.PATH) == []

    def test_suppressed(self):
        findings = lint(
            "def f(history=[]):  # frfc-lint: disable=D004\n    return history\n",
            path=self.PATH,
        )
        assert findings == []


class TestD005PublicFunctionsAnnotated:
    def test_unannotated_public_function_flagged(self):
        findings = lint(
            """
            def route(flit, port):
                return port
            """,
            path="src/repro/core/fake.py",
        )
        assert rule_ids(findings) == ["D005"]
        assert "flit" in findings[0].message
        assert "return" in findings[0].message

    def test_unannotated_method_flagged(self):
        findings = lint(
            """
            class Router:
                def step(self, cycle):
                    pass
            """,
            path="src/repro/baselines/fake.py",
        )
        assert rule_ids(findings) == ["D005"]

    def test_private_function_exempt(self):
        findings = lint(
            """
            def _helper(x):
                return x
            """,
            path="src/repro/core/fake.py",
        )
        assert findings == []

    def test_fully_annotated_clean(self):
        findings = lint(
            """
            class Router:
                def step(self, cycle: int) -> None:
                    pass

            def route(flit: object, *extra: int, **options: float) -> int:
                return 0
            """,
            path="src/repro/core/fake.py",
        )
        assert findings == []

    def test_outside_annotated_subpackages_exempt(self):
        findings = lint(
            """
            def route(flit, port):
                return port
            """,
            path="src/repro/harness/fake.py",
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            """
            def route(flit, port):  # frfc-lint: disable=D005
                return port
            """,
            path="src/repro/core/fake.py",
        )
        assert findings == []


class TestD006ForeignPrivateState:
    def test_write_to_other_objects_private_attr_flagged(self):
        findings = lint(
            """
            def poke(other):
                other._count = 1
            """
        )
        assert rule_ids(findings) == ["D006"]

    def test_augassign_flagged(self):
        findings = lint(
            """
            def poke(other):
                other._count += 1
            """
        )
        assert rule_ids(findings) == ["D006"]

    def test_write_to_own_private_attr_clean(self):
        findings = lint(
            """
            class Router:
                def reset(self):
                    self._count = 0
            """
        )
        assert findings == []

    def test_link_pipeline_read_flagged_outside_link_module(self):
        findings = lint(
            """
            def peek(link):
                return list(link._slots)
            """
        )
        assert rule_ids(findings) == ["D006"]
        assert "_slots" in findings[0].message

    def test_link_pipeline_read_clean_inside_link_module(self):
        findings = lint(
            """
            def peek(link: object) -> list:
                return list(link._slots)
            """,
            path="src/repro/sim/link.py",
        )
        assert findings == []

    def test_public_attr_write_clean(self):
        findings = lint(
            """
            def poke(other):
                other.count = 1
            """
        )
        assert findings == []

    def test_suppressed_with_next_line_marker(self):
        findings = lint(
            """
            def peek(link):
                # frfc-lint: disable-next-line=D006 -- sanctioned peek
                return list(link._slots)
            """
        )
        assert findings == []


class TestD007PhaseRaces:
    RACY = """
    class RacyRouter:
        __slots__ = ("node", "board")

        def __init__(self, node, board):
            self.node = node
            self.board = board

        def phase(self, cycle):
            self.board[self.node] = cycle

    class RacyNetwork:
        def __init__(self, n):
            board = {}
            self.routers = [RacyRouter(k, board) for k in range(n)]

        def step(self, cycle):
            for router in self.routers:
                router.phase(cycle)
    """

    def test_shared_write_in_phase_loop_flagged(self):
        findings = lint(self.RACY)
        assert rule_ids(findings) == ["D007"]
        assert "board" in findings[0].message

    def test_finding_names_the_phase(self):
        findings = lint(self.RACY)
        assert "phase" in findings[0].message

    def test_owned_state_clean(self):
        findings = lint(
            """
            class Router:
                __slots__ = ("node", "queue")

                def __init__(self, node):
                    self.node = node
                    self.queue = []

                def phase(self, cycle):
                    self.queue.append(cycle)

            class Network:
                def __init__(self, n):
                    self.routers = [Router(k) for k in range(n)]

                def step(self, cycle):
                    for router in self.routers:
                        router.phase(cycle)
            """
        )
        assert findings == []

    def test_model_with_imported_actor_classes_skipped(self):
        """Single-file mode only judges models it can fully resolve; the
        whole-model `frfc_analyze races` pass covers the rest."""
        findings = lint(
            """
            from elsewhere import Router

            class Network:
                def __init__(self, n):
                    self.routers = [Router(k) for k in range(n)]

                def step(self, cycle):
                    for router in self.routers:
                        router.phase(cycle)
            """
        )
        assert findings == []


class TestD009HotPathAllocation:
    DIRTY = """
    class Router:
        __slots__ = ("node", "queue")

        def __init__(self, node):
            self.node = node
            self.queue = []

        def phase(self, cycle):
            for _ in range(4):
                picks = [q for q in self.queue if q > cycle]
                self.queue.extend(picks)

    class Network:
        def __init__(self, n):
            self.routers = [Router(k) for k in range(n)]

        def step(self, cycle):
            for router in self.routers:
                router.phase(cycle)
    """

    def test_comprehension_in_hot_loop_flagged(self):
        findings = lint(self.DIRTY)
        assert rule_ids(findings) == ["D009"]
        assert "comprehension" in findings[0].message
        assert "Router.phase" in findings[0].message
        assert "[in loop]" in findings[0].message

    def test_suppressible(self):
        source = self.DIRTY.replace(
            "picks = [q for q in self.queue if q > cycle]",
            "picks = [q for q in self.queue if q > cycle]"
            "  # frfc-lint: disable=D009",
        )
        assert lint(source) == []

    def test_allocation_off_the_hot_path_not_flagged(self):
        findings = lint(
            """
            class Router:
                __slots__ = ("node", "queue")

                def __init__(self, node):
                    self.node = node
                    self.queue = [0 for _ in range(8)]

                def phase(self, cycle):
                    self.queue[0] = cycle

            class Network:
                def __init__(self, n):
                    self.routers = [Router(k) for k in range(n)]

                def step(self, cycle):
                    for router in self.routers:
                        router.phase(cycle)
            """
        )
        assert findings == []


class TestD010HotPathSlots:
    SLOTLESS = """
    class Router:
        def __init__(self, node):
            self.node = node

        def phase(self, cycle):
            self.node = cycle

    class Network:
        def __init__(self, n):
            self.routers = [Router(k) for k in range(n)]

        def step(self, cycle):
            for router in self.routers:
                router.phase(cycle)
    """

    def test_slotless_hot_class_flagged(self):
        findings = lint(self.SLOTLESS)
        assert rule_ids(findings) == ["D010"]
        assert "Router" in findings[0].message
        assert "__slots__" in findings[0].message

    def test_finding_points_at_the_class(self):
        findings = lint(self.SLOTLESS)
        assert findings[0].line == 2  # the `class Router:` line

    def test_suppressible(self):
        source = self.SLOTLESS.replace(
            "class Router:", "class Router:  # frfc-lint: disable=D010"
        )
        assert lint(source) == []

    def test_slotted_model_clean(self):
        findings = lint(
            """
            class Router:
                __slots__ = ("node",)

                def __init__(self, node):
                    self.node = node

                def phase(self, cycle):
                    self.node = cycle

            class Network:
                def __init__(self, n):
                    self.routers = [Router(k) for k in range(n)]

                def step(self, cycle):
                    for router in self.routers:
                        router.phase(cycle)
            """
        )
        assert findings == []


class TestD008NoPrintInSimulator:
    def test_print_in_simulator_module_flagged(self):
        findings = lint("print('router state')\n", path="src/repro/core/router.py")
        assert rule_ids(findings) == ["D008"]

    def test_print_in_obs_module_flagged(self):
        findings = lint("print('event')\n", path="src/repro/obs/events.py")
        assert rule_ids(findings) == ["D008"]

    def test_cli_module_exempt(self):
        findings = lint("print('result')\n", path="src/repro/harness/runner.py")
        assert findings == []

    def test_outside_repro_exempt(self):
        findings = lint("print('debug')\n", path="tools/some_script.py")
        assert findings == []
        findings = lint("print('debug')\n", path="tests/obs/test_events.py")
        assert findings == []

    def test_docstring_mention_clean(self):
        findings = lint(
            '''
            """Example::

                print(result.summary())
            """
            x = 1
            ''',
            path="src/repro/core/router.py",
        )
        assert findings == []

    def test_shadowed_print_method_clean(self):
        findings = lint(
            """
            def report(log):
                log.print()
            """,
            path="src/repro/obs/fake.py",
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            "print('x')  # frfc-lint: disable=D008\n",
            path="src/repro/core/router.py",
        )
        assert findings == []


class TestD014ResultWritesAreAtomic:
    def test_truncating_open_flagged(self):
        findings = lint(
            """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            path="src/repro/obs/manifest.py",
        )
        assert rule_ids(findings) == ["D014"]
        assert findings[0].line == 3  # the open() call itself
        assert "atomic" in findings[0].message

    def test_exclusive_and_keyword_modes_flagged(self):
        assert rule_ids(
            lint("open(p, 'x')\n", path="src/repro/obs/report.py")
        ) == ["D014"]
        assert rule_ids(
            lint("open(p, mode='w')\n", path="src/repro/obs/report.py")
        ) == ["D014"]

    def test_path_write_methods_flagged(self):
        findings = lint(
            """
            def save(path, text, blob):
                path.write_text(text)
                path.write_bytes(blob)
            """,
            path="src/repro/stats/fake.py",
        )
        assert rule_ids(findings) == ["D014", "D014"]

    def test_reads_and_appends_clean(self):
        findings = lint(
            """
            def load(path):
                with open(path) as handle:
                    return handle.read()

            def extend(path, line):
                # Append-only streams (progress.jsonl) resume, not truncate.
                with open(path, "a") as handle:
                    handle.write(line)
            """,
            path="src/repro/obs/progress.py",
        )
        assert findings == []

    def test_atomic_writers_and_cli_exempt(self):
        snippet = "open(p, 'w')\n"
        assert lint(snippet, path="src/repro/obs/exporters.py") == []
        assert lint(snippet, path="src/repro/obs/ledger.py") == []
        assert lint(snippet, path="src/repro/harness/runner.py") == []
        assert lint(snippet, path="tools/bench_gate.py") == []

    def test_dynamic_mode_not_flagged(self):
        # A non-literal mode cannot be proven truncating; stay quiet.
        assert lint("open(p, mode)\n", path="src/repro/obs/fake.py") == []

    def test_suppressible(self):
        findings = lint(
            "open(p, 'w')  # frfc-lint: disable=D014\n",
            path="src/repro/obs/manifest.py",
        )
        assert findings == []


class TestEngine:
    def test_disable_all(self):
        findings = lint("import random  # frfc-lint: disable=all\n")
        assert findings == []

    def test_disable_list(self):
        source = "def f(history=[]):  # frfc-lint: disable=D004, D005\n    return history\n"
        assert lint(source, path="src/repro/core/fake.py") == []

    def test_suppression_is_line_scoped(self):
        findings = lint(
            """
            import random  # frfc-lint: disable=D001

            def f(history=[]):
                return history
            """,
            path="src/repro/harness/fake.py",
        )
        assert rule_ids(findings) == ["D004"]

    def test_suppressed_rules_by_line(self):
        table = suppressed_rules_by_line(
            "x = 1\ny = 2  # frfc-lint: disable=D001,D003\n"
        )
        assert table == {2: {"D001", "D003"}}

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert rule_ids(findings) == ["E000"]

    def test_finding_format(self):
        finding = Finding(path="a.py", line=3, column=4, rule_id="D001", message="boom")
        assert finding.format() == "a.py:3:4: D001 boom"

    def test_findings_sorted_by_position(self):
        source = "import random\n\n\ndef f(history=[]):\n    return history\n"
        findings = lint_source(source, "src/repro/harness/fake.py")
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_rule_catalogue_complete(self):
        assert [rule.rule_id for rule in ALL_RULES] == [
            "D001",
            "D002",
            "D003",
            "D004",
            "D005",
            "D006",
            "D007",
            "D008",
            "D009",
            "D010",
            "D011",
            "D012",
            "D013",
            "D014",
        ]
        assert all(rule.summary for rule in ALL_RULES)

    def test_disable_next_line(self):
        findings = lint(
            """
            # frfc-lint: disable-next-line=D001 -- sanctioned wrapper
            import random
            """
        )
        assert findings == []

    def test_disable_next_line_is_line_scoped(self):
        findings = lint(
            """
            # frfc-lint: disable-next-line=D001
            import random
            import random as r2
            """
        )
        assert rule_ids(findings) == ["D001"]

    def test_disable_next_line_wrong_rule_does_not_suppress(self):
        findings = lint(
            """
            # frfc-lint: disable-next-line=D002
            import random
            """
        )
        assert rule_ids(findings) == ["D001"]

    def test_both_spellings_in_suppression_table(self):
        table = suppressed_rules_by_line(
            "a = 1  # frfc-lint: disable=D001\n"
            "# frfc-lint: disable-next-line=D002,D003\n"
            "b = 2\n"
        )
        assert table == {1: {"D001"}, 3: {"D002", "D003"}}

    def test_iter_python_files_rejects_non_python(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        with pytest.raises(LintConfigurationError):
            list(iter_python_files([target]))

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text("import random\n")
        (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
        findings = lint_paths([tmp_path])
        assert rule_ids(findings) == ["D001"]

    def test_iter_python_files_dedupes_overlapping_paths(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        target = tmp_path / "pkg" / "mod.py"
        target.write_text("x = 1\n")
        files = list(iter_python_files([tmp_path, tmp_path / "pkg", target, target]))
        assert len(files) == 1

    def test_overlapping_paths_report_findings_once(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        findings = lint_paths([tmp_path, bad])
        assert rule_ids(findings) == ["D001"]

    def test_non_utf8_file_reported_as_e001(self, tmp_path):
        mojibake = tmp_path / "mojibake.py"
        mojibake.write_bytes(b"x = 1  # \xff\xfe caf\xe9\n")
        findings = lint_paths([tmp_path])
        assert rule_ids(findings) == ["E001"]
        assert "UTF-8" in findings[0].message

    def test_one_bad_file_does_not_stop_the_sweep(self, tmp_path):
        (tmp_path / "mojibake.py").write_bytes(b"\xff\xfe\x00")
        (tmp_path / "ok_but_bad.py").write_text("import random\n")
        findings = lint_paths([tmp_path])
        assert sorted(rule_ids(findings)) == ["D001", "E001"]


class TestRepositoryIsClean:
    def test_src_repro_has_no_findings(self):
        findings = lint_paths([REPO / "src" / "repro"])
        assert findings == [], "\n".join(f.format() for f in findings)


class TestCommandLine:
    def test_cli_clean_tree_exit_zero(self, tmp_path, capsys):
        cli = load_cli()
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert cli.main([str(tmp_path)]) == 0

    def test_cli_findings_exit_one(self, tmp_path, capsys):
        cli = load_cli()
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert cli.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "D001" in out

    def test_cli_list_rules(self, capsys):
        cli = load_cli()
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "D001",
            "D002",
            "D003",
            "D004",
            "D005",
            "D006",
            "D007",
            "D008",
            "D009",
            "D010",
        ):
            assert rule_id in out
