"""Tests for VC configuration presets."""

import pytest

from repro.baselines.vc.config import VC8, VC16, VC32, VCConfig


class TestPresets:
    def test_table1_configurations(self):
        assert (VC8.num_vcs, VC8.buffers_per_input) == (2, 8)
        assert (VC16.num_vcs, VC16.buffers_per_input) == (4, 16)
        assert (VC32.num_vcs, VC32.buffers_per_input) == (8, 32)
        assert VC8.buffers_per_vc == VC16.buffers_per_vc == VC32.buffers_per_vc == 4

    def test_names(self):
        assert VC8.name == "VC8"
        assert VC32.name == "VC32"

    def test_fast_control_regime_wire_delays(self):
        assert VC8.data_link_delay == 4
        assert VC8.credit_link_delay == 1

    def test_unit_links_variant(self):
        unit = VC16.with_unit_links()
        assert unit.data_link_delay == 1
        assert unit.credit_link_delay == 1
        assert unit.buffers_per_input == 16


class TestValidation:
    def test_rejects_zero_vcs(self):
        with pytest.raises(ValueError):
            VCConfig(num_vcs=0)

    def test_rejects_zero_buffers(self):
        with pytest.raises(ValueError):
            VCConfig(buffers_per_vc=0)

    def test_rejects_unknown_sharing(self):
        with pytest.raises(ValueError):
            VCConfig(buffer_sharing="magic")

    def test_rejects_unknown_reallocation(self):
        with pytest.raises(ValueError):
            VCConfig(vc_reallocation="never")
