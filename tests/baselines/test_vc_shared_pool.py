"""Tests for the Tamir-Frazier shared buffer pool variant of the VC router."""

import pytest

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.harness.saturation import measure_throughput
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D


@pytest.fixture
def pool_config():
    return VCConfig(num_vcs=2, buffers_per_vc=4, buffer_sharing="pool")


class TestSharedPool:
    def test_delivers_under_sustained_high_load(self, mesh4, pool_config):
        """The dedicated-slot rule keeps the pool deadlock-free even past
        saturation (a naive fully shared pool deadlocks here)."""
        network = VCNetwork(pool_config, mesh=mesh4, injection_rate=0.14, seed=7)
        simulator = Simulator(network)
        simulator.step(2_500)
        network.stop_injection()
        simulator.run_until(
            lambda: not network.packets_in_flight
            and all(ni.queue_length == 0 for ni in network.interfaces),
            deadline=40_000,
            check_every=5,
        )
        assert network.packets_delivered > 700

    def test_queue_can_exceed_private_share(self, mesh4, pool_config):
        """The point of pooling: one VC may hold more than buffers_per_vc."""
        network = VCNetwork(pool_config, mesh=mesh4, injection_rate=0.12, seed=5)
        simulator = Simulator(network)
        exceeded = False
        for _ in range(120):
            simulator.step(10)
            for router in network.routers:
                for queues in router.in_queues:
                    if any(len(q) > pool_config.buffers_per_vc for q in queues):
                        exceeded = True
        assert exceeded

    def test_pool_occupancy_bounded(self, mesh4, pool_config):
        network = VCNetwork(pool_config, mesh=mesh4, injection_rate=0.12, seed=5)
        simulator = Simulator(network)
        for _ in range(60):
            simulator.step(20)
            for router in network.routers:
                for port in range(5):
                    assert router.pool_occupancy[port] <= pool_config.buffers_per_input

    def test_no_throughput_gain_over_private(self, mesh8):
        """The paper's Section 5 finding, at VC8's saturation point."""
        private = measure_throughput(
            VCConfig(num_vcs=2, buffers_per_vc=4), 0.66, seed=2, preset="quick"
        )
        pooled = measure_throughput(
            VCConfig(num_vcs=2, buffers_per_vc=4, buffer_sharing="pool"),
            0.66,
            seed=2,
            preset="quick",
        )
        assert pooled <= private + 0.05
