"""Integration tests for the virtual-channel network."""

import pytest

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.flits import packet_to_flits
from repro.baselines.vc.network import VCNetwork
from repro.sim.kernel import Simulator
from repro.traffic.packet import Packet


def run_traffic(config, mesh, cycles, rate, seed=5, **kwargs):
    network = VCNetwork(config, mesh=mesh, injection_rate=rate, seed=seed, **kwargs)
    simulator = Simulator(network)
    simulator.step(cycles)
    network.stop_injection()
    simulator.run_until(
        lambda: not network.packets_in_flight
        and all(ni.queue_length == 0 for ni in network.interfaces),
        deadline=cycles + 20_000,
        check_every=5,
    )
    return network, simulator


class TestFlitFraming:
    def test_five_flit_packet(self):
        packet = Packet(1, 0, 1, 5, 0)
        flits = packet_to_flits(packet)
        assert len(flits) == 5
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])

    def test_single_flit_packet_is_head_and_tail(self):
        flits = packet_to_flits(Packet(1, 0, 1, 1, 0))
        assert len(flits) == 1
        assert flits[0].is_head and flits[0].is_tail


class TestDelivery:
    def test_all_packets_delivered(self, mesh4, small_vc_config):
        network, _ = run_traffic(small_vc_config, mesh4, cycles=1_500, rate=0.02)
        assert network.packets_delivered > 50
        assert not network.packets_in_flight

    def test_single_packet_end_to_end(self, mesh4, small_vc_config):
        network = VCNetwork(small_vc_config, mesh=mesh4, injection_rate=0.5, seed=1)
        network.stop_injection()
        packet = Packet(1, source=0, destination=15, length=5, creation_cycle=0)
        network.packets_in_flight[1] = packet
        network.interfaces[0].enqueue(packet)
        simulator = Simulator(network)
        simulator.run_until(lambda: packet.delivered, deadline=500)
        # 6 hops at 5 cycles each, plus injection/ejection/serialisation.
        assert 30 <= packet.latency <= 40

    def test_heavy_load_no_loss(self, mesh4, small_vc_config):
        network, _ = run_traffic(small_vc_config, mesh4, cycles=2_000, rate=0.12)
        assert network.packets_delivered > 500
        assert not network.packets_in_flight

    def test_single_vc_wormhole_mode(self, mesh4):
        config = VCConfig(num_vcs=1, buffers_per_vc=8)
        network, _ = run_traffic(config, mesh4, cycles=1_200, rate=0.04)
        assert network.packets_delivered > 150

    def test_shared_pool_mode(self, mesh4):
        config = VCConfig(num_vcs=2, buffers_per_vc=4, buffer_sharing="pool")
        network, _ = run_traffic(config, mesh4, cycles=1_500, rate=0.08)
        assert network.packets_delivered > 300
        assert not network.packets_in_flight

    def test_when_empty_reallocation(self, mesh4):
        config = VCConfig(num_vcs=2, buffers_per_vc=4, vc_reallocation="when_empty")
        network, _ = run_traffic(config, mesh4, cycles=1_200, rate=0.04)
        assert network.packets_delivered > 150

    def test_long_packets(self, mesh4, small_vc_config):
        network, _ = run_traffic(
            small_vc_config, mesh4, cycles=1_200, rate=0.008, packet_length=21
        )
        assert network.packets_delivered > 20


class TestInvariants:
    def test_credit_conservation(self, mesh4, small_vc_config):
        """After draining, every credit must have returned home."""
        network, _ = run_traffic(small_vc_config, mesh4, cycles=1_000, rate=0.05)
        for router in network.routers:
            for port in network.mesh.mesh_ports(router.node):
                for vc in range(small_vc_config.num_vcs):
                    assert (
                        router.out_credits[port][vc] == small_vc_config.buffers_per_vc
                    ), f"credit leak at node {router.node} port {port} vc {vc}"

    def test_no_stranded_flits(self, mesh4, small_vc_config):
        network, _ = run_traffic(small_vc_config, mesh4, cycles=1_000, rate=0.05)
        for router in network.routers:
            for queues in router.in_queues:
                for queue in queues:
                    assert not queue

    def test_determinism(self, mesh4, small_vc_config):
        a, _ = run_traffic(small_vc_config, mesh4, cycles=800, rate=0.05, seed=11)
        b, _ = run_traffic(small_vc_config, mesh4, cycles=800, rate=0.05, seed=11)
        assert a.packets_delivered == b.packets_delivered
        assert a.latency_stats.samples() == b.latency_stats.samples()
