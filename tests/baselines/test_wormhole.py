"""Tests for the wormhole baseline."""

import pytest

from repro.baselines.vc.config import VCConfig
from repro.baselines.wormhole.network import WormholeConfig, WormholeNetwork
from repro.harness.saturation import measure_throughput
from repro.sim.kernel import Simulator


class TestConfig:
    def test_is_single_vc(self):
        config = WormholeConfig(buffers_per_input=8)
        vc_equiv = config.as_vc_config()
        assert vc_equiv.num_vcs == 1
        assert vc_equiv.buffers_per_vc == 8

    def test_name(self):
        assert WormholeConfig(buffers_per_input=8).name == "WH8"

    def test_link_delays_carried(self):
        config = WormholeConfig(data_link_delay=2, credit_link_delay=1)
        assert config.as_vc_config().data_link_delay == 2


class TestBehaviour:
    def test_delivers_packets(self, mesh4):
        network = WormholeNetwork(
            WormholeConfig(buffers_per_input=8), mesh=mesh4, injection_rate=0.03, seed=4
        )
        simulator = Simulator(network)
        simulator.step(1_200)
        network.stop_injection()
        simulator.run_until(
            lambda: not network.packets_in_flight, deadline=10_000, check_every=5
        )
        assert network.packets_delivered > 80
        assert network.flow_control_name == "WH8"

    def test_saturates_below_virtual_channels(self, mesh8):
        """Wormhole holds the physical channel per packet, so with equal
        buffers it must saturate below 2-VC flow control (the premise of
        the paper's related-work comparison)."""
        wormhole = WormholeConfig(buffers_per_input=8)
        vc = VCConfig(num_vcs=2, buffers_per_vc=4)
        load = 0.60
        wh_accepted = measure_throughput(wormhole, load, preset="quick", seed=2)
        vc_accepted = measure_throughput(vc, load, preset="quick", seed=2)
        assert wh_accepted < vc_accepted
