"""Unit tests of the virtual-channel router on a hand-wired two-router rig.

Pins the per-cycle behaviour: single-stage pipeline timing, credit
consumption and return, VC allocation/release, and the buffer turnaround
that flit-reservation flow control eliminates.
"""

import pytest

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.flits import packet_to_flits
from repro.baselines.vc.router import VCRouter
from repro.sim.link import Link
from repro.sim.rng import DeterministicRng
from repro.topology.mesh import EAST, INJECT, WEST, Mesh2D
from repro.topology.routing import DimensionOrderRouting
from repro.traffic.packet import Packet


class Rig:
    """Routers 0 and 1 of a 2x2 mesh, wired only along the east-west edge."""

    def __init__(self, config=None):
        self.config = config or VCConfig(num_vcs=2, buffers_per_vc=4)
        mesh = Mesh2D(2, 2)
        routing = DimensionOrderRouting(mesh)
        self.ejected = []
        self.left = VCRouter(
            0, self.config, routing, DeterministicRng(1),
            lambda flit, now: self.ejected.append((0, flit, now)),
        )
        self.right = VCRouter(
            1, self.config, routing, DeterministicRng(2),
            lambda flit, now: self.ejected.append((1, flit, now)),
        )
        data = Link(self.config.data_link_delay)
        credit = Link(self.config.credit_link_delay)
        self.left.connect_output(EAST, data, credit)
        self.right.connect_input(WEST, data, credit)
        self.ni_credits = []
        for router in (self.left, self.right):
            router.ni_credit = self.ni_credits.append
        self.cycle = 0

    def step(self, cycles=1):
        for _ in range(cycles):
            for router in (self.left, self.right):
                router.deliver_credits(self.cycle)
                router.switch_traversal(self.cycle)
            for router in (self.left, self.right):
                router.deliver_flits(self.cycle)
            for router in (self.left, self.right):
                router.route_and_allocate(self.cycle)
            self.cycle += 1

    def inject_packet(self, destination=1, length=1, vc=0):
        packet = Packet(1, source=0, destination=destination, length=length,
                        creation_cycle=self.cycle)
        for flit in packet_to_flits(packet):
            self.left.accept_flit(INJECT, vc, flit)
        return packet


class TestPipelineTiming:
    def test_one_cycle_per_router_plus_wire(self):
        """Flit injected before cycle 0 departs at 1, arrives at 1+delay,
        and is ejected after one more router cycle."""
        rig = Rig()
        packet = rig.inject_packet(destination=1, length=1)
        rig.step(1)  # cycle 0: routed + VC allocated; no traversal yet
        assert not rig.ejected
        rig.step(1)  # cycle 1: wins the switch at node 0, enters the wire
        assert rig.left.in_queues[INJECT][0] == type(rig.left.in_queues[INJECT][0])()
        # delay=4 wire: arrives at right router at cycle 5, ejects at 6.
        rig.step(5)
        assert rig.ejected
        node, flit, when = rig.ejected[0]
        assert node == 1
        assert when == 6


class TestCredits:
    def test_send_consumes_credit_and_pop_restores_it(self):
        rig = Rig()
        per_vc = rig.config.buffers_per_vc
        rig.inject_packet(destination=1, length=1)
        rig.step(2)  # route + traverse
        assert sum(rig.left.out_credits[EAST]) == 2 * per_vc - 1
        rig.step(6)  # arrival, ejection, credit return (1-cycle wire back)
        assert sum(rig.left.out_credits[EAST]) == 2 * per_vc

    def test_ni_credit_returned_on_forward(self):
        rig = Rig()
        rig.inject_packet(destination=1, length=1, vc=1)
        rig.step(2)
        assert rig.ni_credits == [1]

    def test_no_send_without_credit(self):
        """Fill the downstream VC queue; the sender must stall until a
        credit comes back."""
        config = VCConfig(num_vcs=1, buffers_per_vc=2)
        rig = Rig(config)
        # Two 1-flit packets fill the downstream queue if nothing drains;
        # block draining by giving the right router no eject opportunity?
        # Ejection always drains, so instead check accounting: credits
        # never go negative while a long packet streams.
        packet = Packet(1, 0, 1, 8, 0)
        for flit in packet_to_flits(packet):
            try:
                rig.left.accept_flit(INJECT, 0, flit)
            except RuntimeError:
                break  # input buffer full: expected for a long packet
        for _ in range(30):
            rig.step()
            assert rig.left.out_credits[EAST][0] >= 0


class TestVCAllocation:
    def test_vc_released_after_tail(self):
        rig = Rig()
        rig.inject_packet(destination=1, length=3)
        rig.step(2)
        assert any(rig.left.out_vc_owned[EAST])
        rig.step(4)  # head, body, tail all traverse
        assert not any(rig.left.out_vc_owned[EAST])

    def test_two_packets_use_distinct_vcs(self):
        rig = Rig()
        long_a = Packet(1, 0, 1, 6, 0)
        long_b = Packet(2, 0, 1, 6, 0)
        for flit in packet_to_flits(long_a)[:4]:
            rig.left.accept_flit(INJECT, 0, flit)
        for flit in packet_to_flits(long_b)[:4]:
            rig.left.accept_flit(INJECT, 1, flit)
        rig.step(3)
        owned = rig.left.out_vc_owned[EAST]
        assert owned.count(True) == 2


class TestBufferTurnaround:
    def test_vc_buffer_idles_for_the_round_trip(self):
        """The inefficiency the paper's Figure 1 shows: after a flit departs
        downstream, its buffer slot is unusable upstream until the credit
        returns -- departure cycle + wire (1) + delivery."""
        config = VCConfig(num_vcs=1, buffers_per_vc=1)
        rig = Rig(config)
        rig.inject_packet(destination=1, length=1)
        rig.step(2)  # flit on the wire at cycle 1; credit count now 0
        assert rig.left.out_credits[EAST][0] == 0
        # Flit arrives at 5, ejects at 6, credit sent at 6, delivered at 7:
        # the buffer slot was unusable upstream for the whole round trip.
        for cycle_end, expected in [(5, 0), (6, 0), (7, 1)]:
            rig.step(cycle_end - rig.cycle + 1)
            assert rig.left.out_credits[EAST][0] == expected, f"cycle {cycle_end}"
