"""CongestionSignal must equal an independent recomputation from raw state.

The adaptive-routing contract: ``occupancy(router, dim)`` is a pure read of
router state -- reservation-table busy slots for flit-reservation, occupied
input buffers for VC/wormhole.  These tests recompute each value directly
from ``out_tables`` / ``pool_occupancy`` / per-port buffered counts and
demand exact equality at every router, in both dimensions and summed, on
all three models after warmed-up traffic.
"""

from __future__ import annotations

import pytest

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.baselines.wormhole.network import WormholeConfig, WormholeNetwork
from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.obs.spatial import DIMENSION_PORTS, CongestionSignal
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D

SEEDS = [3, 11, 29]

MODELS = {
    "fr": lambda seed: FRNetwork(
        FRConfig(data_buffers_per_input=6),
        mesh=Mesh2D(4, 4),
        injection_rate=0.10,
        seed=seed,
    ),
    "vc": lambda seed: VCNetwork(
        VCConfig(num_vcs=2, buffers_per_vc=4),
        mesh=Mesh2D(4, 4),
        injection_rate=0.10,
        seed=seed,
    ),
    "wormhole": lambda seed: WormholeNetwork(
        WormholeConfig(buffers_per_input=8),
        mesh=Mesh2D(4, 4),
        injection_rate=0.10,
        seed=seed,
    ),
}


def _raw_dimension_occupancy(router, dim: int, reservation_based: bool) -> int:
    """Recompute one dimension's pressure straight from router internals."""
    total = 0
    for port in DIMENSION_PORTS[dim]:
        if reservation_based:
            table = router.out_tables[port]
            total += table.busy_slots() if table is not None else 0
        else:
            total += router.buffered_flits(port)
    return total


def _raw_total_occupancy(router, reservation_based: bool) -> int:
    if reservation_based:
        return sum(
            table.busy_slots() for table in router.out_tables if table is not None
        )
    return sum(router.pool_occupancy)


@pytest.mark.parametrize("model", sorted(MODELS))
@pytest.mark.parametrize("seed", SEEDS)
def test_signal_matches_raw_state_everywhere(model: str, seed: int) -> None:
    network = MODELS[model](seed)
    Simulator(network).step(300)
    signal = CongestionSignal(network)
    assert signal.reservation_based == (model == "fr")
    saw_pressure = False
    for index, router in enumerate(network.routers):
        whole = signal.occupancy(index)
        assert whole == _raw_total_occupancy(router, signal.reservation_based)
        for dim in (0, 1):
            value = signal.occupancy(index, dim)
            assert value == _raw_dimension_occupancy(
                router, dim, signal.reservation_based
            )
            assert value >= 0
            saw_pressure = saw_pressure or value > 0
    assert saw_pressure, "no router showed any congestion after 300 cycles"


@pytest.mark.parametrize("model", sorted(MODELS))
def test_reading_the_signal_never_perturbs_state(model: str) -> None:
    network = MODELS[model](7)
    simulator = Simulator(network)
    simulator.step(200)
    signal = CongestionSignal(network)
    before = [
        (signal.occupancy(index), signal.occupancy(index, 0), signal.occupancy(index, 1))
        for index in range(len(network.routers))
    ]
    # Reading repeatedly between cycles returns identical values.
    after = [
        (signal.occupancy(index), signal.occupancy(index, 0), signal.occupancy(index, 1))
        for index in range(len(network.routers))
    ]
    assert before == after


def test_bad_dimension_rejected() -> None:
    network = MODELS["fr"](1)
    signal = CongestionSignal(network)
    with pytest.raises(ValueError, match="dimension"):
        signal.occupancy(0, 2)
    with pytest.raises(ValueError, match="dimension"):
        signal.occupancy(0, -1)


def test_routerless_network_rejected() -> None:
    class NoRouters:
        pass

    with pytest.raises(TypeError, match="no routers"):
        CongestionSignal(NoRouters())  # type: ignore[arg-type]
