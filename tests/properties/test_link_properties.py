"""Property-based tests of the pipelined link."""

from hypothesis import given, settings, strategies as st

from repro.sim.link import Link


@st.composite
def send_schedules(draw):
    delay = draw(st.integers(min_value=1, max_value=6))
    width = draw(st.integers(min_value=1, max_value=3))
    sends = draw(
        st.lists(
            st.integers(min_value=0, max_value=2),  # items sent per cycle
            min_size=1,
            max_size=50,
        )
    )
    return delay, width, [min(count, width) for count in sends]


class TestLinkProperties:
    @given(send_schedules())
    @settings(max_examples=200, deadline=None)
    def test_everything_arrives_exactly_once_after_delay(self, schedule):
        delay, width, sends = schedule
        link = Link(delay, width=width)
        sent: list[tuple[int, int]] = []  # (id, send_cycle)
        received: list[tuple[int, int]] = []  # (id, receive_cycle)
        next_id = 0
        horizon = len(sends) + delay + 1
        for cycle in range(horizon):
            arrivals = link.receive(cycle)
            received.extend((item, cycle) for item in arrivals)
            if cycle < len(sends):
                for _ in range(sends[cycle]):
                    link.send(next_id, cycle)
                    sent.append((next_id, cycle))
                    next_id += 1
        # Every item arrives exactly once, exactly `delay` after its send.
        assert sorted(i for i, _ in received) == sorted(i for i, _ in sent)
        send_cycle = dict(sent)
        for item, receive_cycle in received:
            assert receive_cycle == send_cycle[item] + delay

    @given(send_schedules())
    @settings(max_examples=100, deadline=None)
    def test_order_preserved(self, schedule):
        delay, width, sends = schedule
        link = Link(delay, width=width)
        received = []
        next_id = 0
        for cycle in range(len(sends) + delay + 1):
            received.extend(link.receive(cycle))
            if cycle < len(sends):
                for _ in range(sends[cycle]):
                    link.send(next_id, cycle)
                    next_id += 1
        assert received == sorted(received)
