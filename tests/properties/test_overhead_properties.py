"""Property-based tests of the analytical overhead models."""

from hypothesis import given, settings, strategies as st

from repro.baselines.vc.config import VCConfig
from repro.core.config import FRConfig
from repro.overhead.bandwidth import fr_bandwidth, vc_bandwidth
from repro.overhead.storage import FRStorageModel, VCStorageModel


@st.composite
def vc_configs(draw):
    return VCConfig(
        num_vcs=draw(st.sampled_from([1, 2, 4, 8])),
        buffers_per_vc=draw(st.integers(min_value=1, max_value=16)),
    )


@st.composite
def fr_configs(draw):
    return FRConfig(
        data_buffers_per_input=draw(st.integers(min_value=2, max_value=40)),
        control_vcs=draw(st.sampled_from([1, 2, 4])),
        control_buffers_per_vc=draw(st.integers(min_value=1, max_value=8)),
        data_flits_per_control=draw(st.integers(min_value=1, max_value=8)),
        scheduling_horizon=draw(st.sampled_from([16, 32, 64, 128])),
    )


class TestStorageProperties:
    @given(vc_configs())
    @settings(max_examples=100, deadline=None)
    def test_vc_components_positive_and_buffer_dominated(self, config):
        breakdown = VCStorageModel().breakdown(config)
        assert breakdown.bits_per_node > 0
        assert breakdown.data_buffers > breakdown.queue_pointers
        # Flit-equivalents per input always exceed the raw buffer count
        # (the overhead structures cost something).
        assert breakdown.flits_per_input_channel > config.buffers_per_input

    @given(fr_configs())
    @settings(max_examples=100, deadline=None)
    def test_fr_data_buffers_pure_payload(self, config):
        breakdown = FRStorageModel(flit_bits=256).breakdown(config)
        assert breakdown.data_buffers == 256 * config.data_buffers_per_input * 5

    @given(fr_configs(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_fr_storage_monotone_in_buffers(self, config, extra):
        from dataclasses import replace

        model = FRStorageModel()
        bigger = replace(
            config, data_buffers_per_input=config.data_buffers_per_input + extra
        )
        assert (
            model.breakdown(bigger).bits_per_node
            > model.breakdown(config).bits_per_node
        )


class TestBandwidthProperties:
    @given(fr_configs(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_fr_overhead_positive_and_bounded(self, config, length):
        overhead = fr_bandwidth(config, packet_length=length)
        assert overhead.bits_per_data_flit > 0
        # Destination amortises to nothing; VCID and time stamp stay small.
        assert overhead.bits_per_data_flit < 32

    @given(vc_configs(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_longer_packets_never_increase_overhead(self, config, length):
        shorter = vc_bandwidth(config, packet_length=length)
        longer = vc_bandwidth(config, packet_length=length + 5)
        assert longer.bits_per_data_flit <= shorter.bits_per_data_flit

    @given(fr_configs(), st.integers(min_value=2, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_wider_control_flits_never_increase_vcid_overhead(self, config, length):
        from dataclasses import replace

        narrow = fr_bandwidth(replace(config, data_flits_per_control=1), length)
        wide = fr_bandwidth(
            replace(config, data_flits_per_control=config.data_flits_per_control),
            length,
        )
        assert wide.vcid <= narrow.vcid + 1e-9
