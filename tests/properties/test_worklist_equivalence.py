"""Active-set worklists are a pure performance device: equivalence proofs.

The step loops skip components whose wake flags are down.  That is only
sound if skipping a drained component is indistinguishable from stepping
it -- no state changes, no randomness drawn.  These tests enforce the
contract end to end: a run with the worklists engaged must produce a
bit-identical digest to a *dense* run in which every component is forced
active every cycle (``rearm_activity``), across all three flow-control
models, multiple seeds, and with the invariant checker attached.

A unit test pins the deregister/re-register life cycle itself: a drained
router's flags fall to zero and new work raises them again.
"""

from __future__ import annotations

import pytest

from repro import FR6, VC8, WormholeConfig
from repro.analysis.permute import digest_network
from repro.harness.experiment import build_network
from repro.sim.invariants import InvariantChecker
from repro.sim.kernel import Simulator
from repro.traffic.packet import Packet

CYCLES = 250
LOAD = 0.4

CONFIGS = {
    "FR6": FR6,
    "VC8": VC8,
    "WH8": WormholeConfig(buffers_per_input=8),
}


def _digest(config, seed: int, dense: bool, check_invariants: bool):
    network = build_network(config, LOAD, seed=seed)
    checker = InvariantChecker() if check_invariants else None
    simulator = Simulator(network, checker=checker)
    if dense:
        # Force a full sweep every cycle: every component steps whether or
        # not it has work, exactly the pre-worklist execution model.
        for _ in range(CYCLES):
            network.rearm_activity()
            simulator.step(1)
    else:
        simulator.step(CYCLES)
    return digest_network(network, CYCLES, "dense" if dense else "active")


@pytest.mark.parametrize("name", sorted(CONFIGS))
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_active_and_dense_runs_are_digest_identical(name, seed):
    active = _digest(CONFIGS[name], seed, dense=False, check_invariants=False)
    dense = _digest(CONFIGS[name], seed, dense=True, check_invariants=False)
    assert active.hexdigest() == dense.hexdigest(), (
        f"{name} seed {seed}: worklist skipping changed the simulation; "
        f"fields differing: {active.differs_from(dense)}"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_equivalence_holds_under_the_invariant_checker(name):
    active = _digest(CONFIGS[name], 1, dense=False, check_invariants=True)
    dense = _digest(CONFIGS[name], 1, dense=True, check_invariants=True)
    assert active.hexdigest() == dense.hexdigest()


class TestDrainDeregister:
    """A drained router leaves the worklist and new work re-registers it."""

    def _quiet_network(self):
        network = build_network(FR6, 0.3, seed=1)
        network.stop_injection()  # no random traffic: we drive packets by hand
        return network

    def _inject(self, network, packet_id: int, cycle: int) -> int:
        """Hand one packet to node 0's interface the way ``step`` would."""
        source, destination = 0, 3
        packet = Packet(packet_id, source, destination, length=5,
                        creation_cycle=cycle)
        network.packets_in_flight[packet.packet_id] = packet
        network.interfaces[source].enqueue(packet)
        network._ni_ctrl_active[source] = 1
        return source

    def test_flags_fall_when_drained_and_rise_on_new_work(self):
        network = self._quiet_network()
        simulator = Simulator(network)

        source = self._inject(network, packet_id=1, cycle=0)
        simulator.step(200)
        assert network.packets_delivered == 1

        # Fully drained: every wake flag in every phase worklist is down.
        for flags in (network._ctrl_active, network._ni_ctrl_active,
                      network._dep_active, network._ni_data_active,
                      network._arr_active):
            assert not any(flags)

        # New work re-registers: the NI flag is raised at enqueue, and the
        # injected control flit wakes the router's control phase.
        self._inject(network, packet_id=2, cycle=simulator.cycle)
        assert network._ni_ctrl_active[source] == 1
        simulator.step(2)
        assert network._ctrl_active[source] == 1
        simulator.step(200)
        assert network.packets_delivered == 2
        for flags in (network._ctrl_active, network._ni_ctrl_active,
                      network._dep_active, network._ni_data_active,
                      network._arr_active):
            assert not any(flags)
