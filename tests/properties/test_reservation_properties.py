"""Property-based tests of the output reservation table.

The table is the correctness heart of flit-reservation flow control: if its
accounting ever overbooks a downstream pool, a router drops a flit.  These
tests drive it with random but *protocol-legal* operation sequences (the
same sequences a network of routers would generate) and check the invariants
against a simple oracle that tracks true buffer occupancy intervals.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.reservation import OutputReservationTable

HORIZON = 16
BUFFERS = 3
DELAY = 2


class ProtocolMachine:
    """Drives a table the way a router + downstream node pair would.

    Each reservation occupies a downstream buffer from arrival until a
    randomly chosen departure; the matching advance credit is delivered
    after the credit wire delay.  The oracle tracks the true occupancy
    intervals so the table's counts can be checked against reality.
    """

    def __init__(self):
        self.table = OutputReservationTable(HORIZON, BUFFERS, DELAY)
        self.now = 0
        self.pending_credits: list[tuple[int, int]] = []  # (deliver_at, from_cycle)
        self.occupancy: list[tuple[int, int]] = []  # true [arrival, free) intervals

    def deliver_due_credits(self):
        due = [c for c in self.pending_credits if c[0] <= self.now]
        self.pending_credits = [c for c in self.pending_credits if c[0] > self.now]
        for _, from_cycle in due:
            self.table.apply_credit(self.now, from_cycle)

    def try_reserve(self, slack: int, hold: int) -> bool:
        """Reserve the earliest slot and later free the buffer after ``hold``."""
        departure = self.table.find_departure(self.now, self.now + 1 + slack)
        if departure is None:
            return False
        self.table.reserve(self.now, departure)
        arrival = departure + DELAY
        free_at = arrival + hold
        self.occupancy.append((arrival, free_at))
        # The downstream input scheduler sends the advance credit one credit
        # wire delay later.
        self.pending_credits.append((self.now + 1, free_at))
        return True

    def true_occupied(self, cycle: int) -> int:
        return sum(1 for a, f in self.occupancy if a <= cycle < f)


@st.composite
def operation_sequences(draw):
    return draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # advance time
                st.booleans(),  # attempt a reservation?
                st.integers(min_value=0, max_value=4),  # slack
                st.integers(min_value=0, max_value=6),  # hold time
            ),
            min_size=1,
            max_size=60,
        )
    )


class TestProtocolInvariants:
    @given(operation_sequences())
    @settings(max_examples=150, deadline=None)
    def test_never_overbooks_and_counts_are_conservative(self, ops):
        machine = ProtocolMachine()
        for advance, attempt, slack, hold in ops:
            machine.now += advance
            machine.table.advance(machine.now)
            machine.deliver_due_credits()
            if attempt:
                machine.try_reserve(slack, hold)
            # Invariant 1: true occupancy never exceeds the pool.
            for cycle in range(machine.now, machine.now + HORIZON):
                occupied = machine.true_occupied(cycle)
                assert occupied <= BUFFERS
                # Invariant 2: the table's free count never promises more
                # than reality allows (conservatism); undelivered credits may
                # make it *less* than reality, never more.
                assert machine.table.free_buffers_at(cycle) <= BUFFERS - occupied + sum(
                    1
                    for deliver_at, from_cycle in machine.pending_credits
                    if from_cycle <= cycle
                )

    @given(operation_sequences())
    @settings(max_examples=100, deadline=None)
    def test_departures_never_collide(self, ops):
        """No two reservations may ever claim the same channel cycle."""
        machine = ProtocolMachine()
        departures = set()
        for advance, attempt, slack, hold in ops:
            machine.now += advance
            machine.table.advance(machine.now)
            machine.deliver_due_credits()
            if attempt:
                before = len(machine.occupancy)
                if machine.try_reserve(slack, hold):
                    arrival, _ = machine.occupancy[before]
                    departure = arrival - DELAY
                    assert departure not in departures
                    departures.add(departure)
