"""Property-based tests of traffic generation and warm-up detection."""

from hypothesis import given, settings, strategies as st

from repro.sim.rng import DeterministicRng
from repro.stats.warmup import WarmupDetector
from repro.topology.mesh import Mesh2D
from repro.traffic.injection import BernoulliInjection, PeriodicInjection
from repro.traffic.patterns import UniformRandomTraffic


class TestInjectionProperties:
    @given(
        rate=st.floats(min_value=0.01, max_value=1.0),
        phase=st.floats(min_value=0.0, max_value=0.999),
    )
    @settings(max_examples=100, deadline=None)
    def test_periodic_long_run_rate_is_exact(self, rate, phase):
        process = PeriodicInjection(rate, phase=phase)
        rng = DeterministicRng(0)
        horizon = 5_000
        fires = sum(process.should_inject(c, rng) for c in range(horizon))
        # The accumulator never drifts: |fires - rate*horizon| < 1.
        assert abs(fires - rate * horizon) < 1 + 1e-6

    @given(rate=st.floats(min_value=0.05, max_value=0.95), seed=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_bernoulli_rate_within_tolerance(self, rate, seed):
        process = BernoulliInjection(rate)
        rng = DeterministicRng(seed)
        horizon = 4_000
        fires = sum(process.should_inject(c, rng) for c in range(horizon))
        # 5-sigma band for a binomial.
        sigma = (horizon * rate * (1 - rate)) ** 0.5
        assert abs(fires - rate * horizon) < 5 * sigma + 1

    @given(
        rate=st.floats(min_value=0.01, max_value=0.5),
        phase=st.floats(min_value=0.0, max_value=0.999),
    )
    @settings(max_examples=50, deadline=None)
    def test_periodic_gaps_differ_by_at_most_one(self, rate, phase):
        process = PeriodicInjection(rate, phase=phase)
        rng = DeterministicRng(0)
        fire_cycles = [c for c in range(3_000) if process.should_inject(c, rng)]
        gaps = {b - a for a, b in zip(fire_cycles, fire_cycles[1:])}
        assert len(gaps) <= 2
        if len(gaps) == 2:
            assert max(gaps) - min(gaps) == 1


class TestUniformTrafficProperties:
    @given(
        width=st.integers(2, 6),
        height=st.integers(2, 6),
        source=st.integers(0, 35),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=150, deadline=None)
    def test_destination_always_valid(self, width, height, source, seed):
        mesh = Mesh2D(width, height)
        source %= mesh.num_nodes
        pattern = UniformRandomTraffic(mesh)
        rng = DeterministicRng(seed)
        for _ in range(30):
            destination = pattern.destination(source, rng)
            assert 0 <= destination < mesh.num_nodes
            assert destination != source


class TestWarmupProperties:
    @given(
        level=st.floats(min_value=0.0, max_value=50.0),
        noise=st.floats(min_value=0.0, max_value=0.02),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_stationary_signals_always_warm(self, level, noise, seed):
        """Any stationary signal (small multiplicative noise) must be
        declared warm at or shortly after min_cycles."""
        detector = WarmupDetector(min_cycles=200, window=50)
        rng = DeterministicRng(seed)
        warm_at = None
        for cycle in range(600):
            value = level * (1 + noise * (rng.random() - 0.5))
            if detector.record(value, cycle):
                warm_at = cycle
                break
        assert warm_at is not None
        assert warm_at <= 400
