"""Property-based tests of the mesh topology and XY routing."""

from hypothesis import given, settings, strategies as st

from repro.topology.mesh import Mesh2D, opposite_port
from repro.topology.routing import DimensionOrderRouting, route_path


@st.composite
def meshes(draw):
    width = draw(st.integers(min_value=2, max_value=9))
    height = draw(st.integers(min_value=2, max_value=9))
    return Mesh2D(width, height)


@st.composite
def mesh_and_pair(draw):
    mesh = draw(meshes())
    src = draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    dst = draw(st.integers(min_value=0, max_value=mesh.num_nodes - 1))
    return mesh, src, dst


class TestMeshProperties:
    @given(mesh_and_pair())
    @settings(max_examples=200, deadline=None)
    def test_hop_distance_symmetric_and_triangle(self, data):
        mesh, a, b = data
        assert mesh.hop_distance(a, b) == mesh.hop_distance(b, a)
        assert mesh.hop_distance(a, b) <= mesh.hop_distance(a, 0) + mesh.hop_distance(0, b)

    @given(meshes())
    @settings(max_examples=50, deadline=None)
    def test_neighbor_symmetry_everywhere(self, mesh):
        for node in mesh.nodes():
            for port in mesh.mesh_ports(node):
                neighbor = mesh.neighbor(node, port)
                assert mesh.neighbor(neighbor, opposite_port(port)) == node

    @given(meshes())
    @settings(max_examples=30, deadline=None)
    def test_capacity_positive_and_bounded(self, mesh):
        capacity = mesh.capacity_flits_per_node()
        assert 0 < capacity <= 2.0

    @given(mesh_and_pair())
    @settings(max_examples=200, deadline=None)
    def test_routing_reaches_destination_in_exact_hops(self, data):
        mesh, src, dst = data
        if src == dst:
            return
        routing = DimensionOrderRouting(mesh)
        path = route_path(routing, mesh, src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == mesh.hop_distance(src, dst)

    @given(mesh_and_pair())
    @settings(max_examples=200, deadline=None)
    def test_routing_never_reverses_a_dimension(self, data):
        mesh, src, dst = data
        if src == dst:
            return
        routing = DimensionOrderRouting(mesh)
        path = route_path(routing, mesh, src, dst)
        xs = [mesh.coordinates(node)[0] for node in path]
        ys = [mesh.coordinates(node)[1] for node in path]
        assert xs == sorted(xs) or xs == sorted(xs, reverse=True)
        assert ys == sorted(ys) or ys == sorted(ys, reverse=True)
