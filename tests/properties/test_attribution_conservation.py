"""Property: attribution conserves latency and observes without perturbing.

Across seeds and all three flow-control models:

* every delivered packet's components sum *exactly* to its end-to-end
  latency (integer equality, no tolerance -- the decomposition is
  telescoping milestones, so an off-by-one anywhere breaks the sum);
* a run with an attributor attached is digest-identical to a run that
  never saw one (same pure-observer guarantee the probe already proves),
  and a constructed-but-never-attached attributor adds zero events.
"""

from __future__ import annotations

import pytest

from repro.analysis.permute import digest_network
from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.baselines.wormhole.network import WormholeConfig, WormholeNetwork
from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.obs.attribution import COMPONENTS, LatencyAttributor
from repro.obs.events import EventBus
from repro.obs.probe import NetworkProbe
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D

CYCLES = 500
SEEDS = (3, 11, 42)


def _build(model: str, seed: int):
    if model == "fr":
        return FRNetwork(
            FRConfig(data_buffers_per_input=6),
            mesh=Mesh2D(4, 4),
            injection_rate=0.08,
            seed=seed,
        )
    if model == "vc":
        return VCNetwork(
            VCConfig(num_vcs=2, buffers_per_vc=4),
            mesh=Mesh2D(4, 4),
            injection_rate=0.08,
            seed=seed,
        )
    return WormholeNetwork(
        WormholeConfig(buffers_per_input=8),
        mesh=Mesh2D(4, 4),
        injection_rate=0.08,
        seed=seed,
    )


MODELS = ("fr", "vc", "wormhole")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("model", MODELS)
def test_components_sum_exactly_for_every_packet(model: str, seed: int) -> None:
    network = _build(model, seed)
    bus = EventBus()
    attributor = LatencyAttributor(bus).configure_for(network)
    probe = NetworkProbe(bus).attach(network)
    Simulator(network).step(CYCLES)
    probe.detach()

    assert attributor.records, f"{model} seed={seed}: no packets delivered"
    assert attributor.unattributed == 0, attributor.last_failure
    for record in attributor.records:
        assert sum(record.components.values()) == record.latency, (
            f"{model} seed={seed} packet {record.packet_id}: "
            f"{record.components} != {record.latency}"
        )
        assert all(record.components[name] >= 0 for name in COMPONENTS)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("model", MODELS)
def test_attached_attributor_changes_no_digest(model: str, seed: int) -> None:
    baseline_network = _build(model, seed)
    baseline_network.set_measure_window(0, CYCLES)
    Simulator(baseline_network).step(CYCLES)
    baseline = digest_network(baseline_network, CYCLES, "never-observed")

    network = _build(model, seed)
    network.set_measure_window(0, CYCLES)
    bus = EventBus()
    attributor = LatencyAttributor(bus).configure_for(network)
    probe = NetworkProbe(bus).attach(network)
    Simulator(network).step(CYCLES)
    probe.detach()
    observed = digest_network(network, CYCLES, "attributed")

    assert attributor.records  # it really was watching
    diff = baseline.diff_fields(observed)
    assert not diff, f"attribution perturbed the run: {diff}"
    assert baseline.hexdigest() == observed.hexdigest()


@pytest.mark.parametrize("model", MODELS)
def test_detached_attributor_emits_nothing(model: str) -> None:
    """An attributor on a bus nobody probes sees no events and costs the
    network nothing (hooks stay None)."""
    network = _build(model, SEEDS[0])
    bus = EventBus()
    attributor = LatencyAttributor(bus).configure_for(network)
    Simulator(network).step(CYCLES)
    assert not attributor.records
    assert attributor.open_packets == 0
    assert bus.events_emitted == 0
