"""Property-based end-to-end tests: random workloads, exact delivery.

For random mesh sizes, packet lengths, seeds and rates, both flow-control
networks must deliver every injected packet exactly once to the right node
(misdelivery raises inside the ejection hook) and leave no residue behind.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D


@st.composite
def workloads(draw):
    width = draw(st.integers(min_value=2, max_value=4))
    height = draw(st.integers(min_value=2, max_value=4))
    length = draw(st.sampled_from([1, 2, 5]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rate = draw(st.sampled_from([0.01, 0.04, 0.08]))
    traffic = draw(st.sampled_from(["uniform", "bit_complement"]))
    return width, height, length, seed, rate, traffic


def run_and_drain(network, cycles=600):
    simulator = Simulator(network)
    simulator.step(cycles)
    network.stop_injection()
    simulator.run_until(
        lambda: not network.packets_in_flight
        and all(ni.queue_length == 0 for ni in network.interfaces),
        deadline=cycles + 30_000,
        check_every=5,
    )
    return network


class TestExactDelivery:
    @given(workloads())
    @settings(max_examples=25, deadline=None)
    def test_fr_delivers_every_packet(self, workload):
        width, height, length, seed, rate, traffic = workload
        network = FRNetwork(
            FRConfig(data_buffers_per_input=5, control_vcs=2),
            mesh=Mesh2D(width, height),
            packet_length=length,
            injection_rate=rate,
            seed=seed,
            traffic=traffic,
        )
        run_and_drain(network)
        created = sum(source.packets_created for source in network.sources)
        assert network.packets_delivered == created
        assert not network.packets_in_flight

    @given(workloads())
    @settings(max_examples=25, deadline=None)
    def test_vc_delivers_every_packet(self, workload):
        width, height, length, seed, rate, traffic = workload
        network = VCNetwork(
            VCConfig(num_vcs=2, buffers_per_vc=3),
            mesh=Mesh2D(width, height),
            packet_length=length,
            injection_rate=rate,
            seed=seed,
            traffic=traffic,
        )
        run_and_drain(network)
        created = sum(source.packets_created for source in network.sources)
        assert network.packets_delivered == created
        assert not network.packets_in_flight
