"""Tests for the per-node packet source."""

import itertools

from repro.sim.rng import DeterministicRng
from repro.topology.mesh import Mesh2D
from repro.traffic.injection import PeriodicInjection
from repro.traffic.patterns import UniformRandomTraffic
from repro.traffic.source import PacketSource


def make_source(rate=0.5, node=3, mesh=None):
    mesh = mesh or Mesh2D(4, 4)
    counter = itertools.count(1)
    return PacketSource(
        node=node,
        pattern=UniformRandomTraffic(mesh),
        process=PeriodicInjection(rate),
        packet_length=5,
        rng=DeterministicRng(9),
        next_packet_id=lambda: next(counter),
    )


class TestCreation:
    def test_packets_match_process_rate(self):
        source = make_source(rate=0.25)
        created = [source.maybe_create(c) for c in range(400)]
        packets = [p for p in created if p is not None]
        assert len(packets) == 100
        assert source.packets_created == 100

    def test_packet_fields(self):
        source = make_source()
        packet = next(
            p for c in range(10) if (p := source.maybe_create(c)) is not None
        )
        assert packet.source == 3
        assert packet.destination != 3
        assert packet.length == 5

    def test_packet_ids_unique(self):
        source = make_source(rate=1.0)
        ids = [source.maybe_create(c).packet_id for c in range(50)]
        assert len(set(ids)) == 50

    def test_disabled_source_is_silent(self):
        source = make_source(rate=1.0)
        source.enabled = False
        assert all(source.maybe_create(c) is None for c in range(20))


class TestMeasureWindow:
    def test_tags_only_window_packets(self):
        source = make_source(rate=1.0)
        source.measure_window = (10, 20)
        packets = [source.maybe_create(c) for c in range(30)]
        for packet in packets:
            expected = 10 <= packet.creation_cycle < 20
            assert packet.measured == expected

    def test_no_window_means_unmeasured(self):
        source = make_source(rate=1.0)
        assert not source.maybe_create(0).measured
