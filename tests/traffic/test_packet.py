"""Tests for the packet record."""

import pytest

from repro.traffic.packet import Packet


def make_packet(**overrides):
    defaults = dict(
        packet_id=1, source=0, destination=5, length=5, creation_cycle=10
    )
    defaults.update(overrides)
    return Packet(**defaults)


class TestConstruction:
    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            make_packet(length=0)

    def test_rejects_self_destination(self):
        with pytest.raises(ValueError):
            make_packet(destination=0)

    def test_starts_undelivered(self):
        packet = make_packet()
        assert not packet.delivered
        assert packet.flits_delivered == 0


class TestDelivery:
    def test_complete_after_length_flits(self):
        packet = make_packet(length=3)
        assert not packet.record_flit_delivery(20)
        assert not packet.record_flit_delivery(21)
        assert packet.record_flit_delivery(25)
        assert packet.delivered
        assert packet.delivery_cycle == 25

    def test_latency_spans_creation_to_last_flit(self):
        packet = make_packet(length=2, creation_cycle=100)
        packet.record_flit_delivery(120)
        packet.record_flit_delivery(130)
        assert packet.latency == 30

    def test_latency_before_delivery_raises(self):
        with pytest.raises(ValueError):
            _ = make_packet().latency

    def test_overdelivery_raises(self):
        packet = make_packet(length=1)
        packet.record_flit_delivery(11)
        with pytest.raises(ValueError):
            packet.record_flit_delivery(12)

    def test_single_flit_packet(self):
        packet = make_packet(length=1, creation_cycle=0)
        assert packet.record_flit_delivery(4)
        assert packet.latency == 4
