"""Tests for the injection processes."""

import pytest

from repro.sim.rng import DeterministicRng
from repro.traffic.injection import (
    BernoulliInjection,
    PeriodicInjection,
    make_injection_process,
)


class TestPeriodic:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            PeriodicInjection(0.0)
        with pytest.raises(ValueError):
            PeriodicInjection(1.5)
        with pytest.raises(ValueError):
            PeriodicInjection(0.5, phase=1.0)

    def test_exact_long_run_rate(self):
        process = PeriodicInjection(0.3)
        rng = DeterministicRng(0)
        fires = sum(process.should_inject(c, rng) for c in range(10_000))
        assert fires == pytest.approx(3_000, abs=1)

    def test_constant_spacing_at_integral_period(self):
        process = PeriodicInjection(0.25)
        rng = DeterministicRng(0)
        fire_cycles = [c for c in range(100) if process.should_inject(c, rng)]
        gaps = {b - a for a, b in zip(fire_cycles, fire_cycles[1:])}
        assert gaps == {4}

    def test_rate_one_fires_every_cycle(self):
        process = PeriodicInjection(1.0)
        rng = DeterministicRng(0)
        assert all(process.should_inject(c, rng) for c in range(20))

    def test_phase_shifts_first_firing(self):
        rng = DeterministicRng(0)
        early = PeriodicInjection(0.1, phase=0.95)
        late = PeriodicInjection(0.1, phase=0.0)
        early_first = next(c for c in range(100) if early.should_inject(c, rng))
        late_first = next(c for c in range(100) if late.should_inject(c, rng))
        assert early_first < late_first


class TestBernoulli:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            BernoulliInjection(0.0)

    def test_long_run_rate(self):
        process = BernoulliInjection(0.2)
        rng = DeterministicRng(7)
        fires = sum(process.should_inject(c, rng) for c in range(20_000))
        assert fires == pytest.approx(4_000, rel=0.1)


class TestFactory:
    def test_periodic_with_random_phase(self):
        a = make_injection_process("periodic", 0.1, DeterministicRng(1))
        b = make_injection_process("periodic", 0.1, DeterministicRng(2))
        rng = DeterministicRng(0)
        first_a = next(c for c in range(100) if a.should_inject(c, rng))
        first_b = next(c for c in range(100) if b.should_inject(c, rng))
        assert first_a != first_b  # decorrelated phases

    def test_bernoulli(self):
        assert isinstance(make_injection_process("bernoulli", 0.5), BernoulliInjection)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_injection_process("poisson", 0.5)
