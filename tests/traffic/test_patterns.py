"""Tests for the traffic patterns."""

import pytest

from repro.sim.rng import DeterministicRng
from repro.topology.mesh import Mesh2D
from repro.traffic.patterns import (
    BitComplementTraffic,
    BitReverseTraffic,
    HotspotTraffic,
    NeighborTraffic,
    ShuffleTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
    make_traffic_pattern,
)


class TestUniform:
    def test_never_self(self, mesh8):
        pattern = UniformRandomTraffic(mesh8)
        rng = DeterministicRng(0)
        for source in [0, 13, 63]:
            for _ in range(300):
                assert pattern.destination(source, rng) != source

    def test_covers_all_destinations(self, mesh4):
        pattern = UniformRandomTraffic(mesh4)
        rng = DeterministicRng(0)
        seen = {pattern.destination(5, rng) for _ in range(2000)}
        assert seen == set(range(16)) - {5}

    def test_roughly_uniform(self, mesh4):
        pattern = UniformRandomTraffic(mesh4)
        rng = DeterministicRng(1)
        counts = [0] * 16
        draws = 15_000
        for _ in range(draws):
            counts[pattern.destination(0, rng)] += 1
        for node in range(1, 16):
            assert counts[node] == pytest.approx(draws / 15, rel=0.25)


class TestPermutations:
    def test_transpose(self, mesh8):
        pattern = TransposeTraffic(mesh8)
        rng = DeterministicRng(0)
        src = mesh8.node_at(2, 5)
        assert pattern.destination(src, rng) == mesh8.node_at(5, 2)

    def test_transpose_diagonal_is_silent(self, mesh8):
        pattern = TransposeTraffic(mesh8)
        rng = DeterministicRng(0)
        assert pattern.destination(mesh8.node_at(3, 3), rng) is None

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            TransposeTraffic(Mesh2D(4, 2))

    def test_bit_complement(self, mesh8):
        pattern = BitComplementTraffic(mesh8)
        rng = DeterministicRng(0)
        assert pattern.destination(0, rng) == 63
        assert pattern.destination(mesh8.node_at(2, 1), rng) == mesh8.node_at(5, 6)

    def test_bit_reverse(self, mesh8):
        pattern = BitReverseTraffic(mesh8)
        rng = DeterministicRng(0)
        # 64 nodes -> 6 bits; 1 = 000001 -> 100000 = 32.
        assert pattern.destination(1, rng) == 32
        assert pattern.destination(0, rng) is None

    def test_bit_reverse_requires_power_of_two(self):
        with pytest.raises(ValueError):
            BitReverseTraffic(Mesh2D(3, 4))

    def test_shuffle(self, mesh8):
        pattern = ShuffleTraffic(mesh8)
        rng = DeterministicRng(0)
        # 6-bit rotate left: 33 = 100001 -> 000011 = 3.
        assert pattern.destination(33, rng) == 3

    def test_neighbor_wraps(self, mesh8):
        pattern = NeighborTraffic(mesh8)
        rng = DeterministicRng(0)
        assert pattern.destination(mesh8.node_at(7, 2), rng) == mesh8.node_at(0, 2)

    def test_active_sources_excludes_self_mapped(self, mesh8):
        pattern = TransposeTraffic(mesh8)
        active = pattern.active_sources()
        assert len(active) == 64 - 8  # the diagonal is silent


class TestHotspot:
    def test_hotspot_bias(self, mesh8):
        hotspot = 27
        pattern = HotspotTraffic(mesh8, hotspots=[hotspot], hotspot_fraction=0.5)
        rng = DeterministicRng(0)
        draws = 4000
        hits = sum(pattern.destination(0, rng) == hotspot for _ in range(draws))
        # ~50% direct + ~0.8% from the uniform remainder.
        assert hits / draws == pytest.approx(0.5, abs=0.05)

    def test_requires_hotspots(self, mesh8):
        with pytest.raises(ValueError):
            HotspotTraffic(mesh8, hotspots=[])

    def test_fraction_bounds(self, mesh8):
        with pytest.raises(ValueError):
            HotspotTraffic(mesh8, hotspots=[1], hotspot_fraction=1.5)


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["uniform", "transpose", "bit_complement", "bit_reverse", "shuffle", "neighbor"]
    )
    def test_known_names(self, mesh8, name):
        pattern = make_traffic_pattern(name, mesh8)
        assert pattern.mesh is mesh8

    def test_hotspot_default_center(self, mesh8):
        pattern = make_traffic_pattern("hotspot", mesh8)
        assert pattern.hotspots == [mesh8.node_at(4, 4)]

    def test_unknown_name(self, mesh8):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            make_traffic_pattern("nonsense", mesh8)
