"""Probe attach/detach across all three flow-control models."""

from __future__ import annotations

import pytest

from repro.baselines.vc.network import VCNetwork
from repro.baselines.wormhole.network import WormholeConfig, WormholeNetwork
from repro.core.network import FRNetwork
from repro.obs.events import (
    BUFFER_ALLOC,
    BUFFER_FREE,
    CONTROL_ARRIVAL,
    CREDIT_RETURN,
    DATA_ARRIVAL,
    DATA_EJECT,
    FLIT_FORWARD,
    PACKET_CREATED,
    PACKET_DELIVERED,
    RESERVATION_GRANT,
    EventBus,
    EventCollector,
)
from repro.obs.probe import NetworkProbe
from repro.sim.kernel import Simulator


def _observe(network, cycles: int = 400) -> EventCollector:
    bus = EventBus()
    collector = EventCollector()
    bus.subscribe_all(collector)
    probe = NetworkProbe(bus).attach(network)
    try:
        Simulator(network).step(cycles)
    finally:
        probe.detach()
    return collector


def _kinds(collector: EventCollector) -> set[str]:
    return {event.kind for event in collector}


class TestFlitReservationCoverage:
    def test_fr_emits_its_full_taxonomy(self, mesh4, small_fr_config) -> None:
        network = FRNetwork(small_fr_config, mesh=mesh4, injection_rate=0.05, seed=1)
        kinds = _kinds(_observe(network))
        assert {
            CONTROL_ARRIVAL,
            DATA_ARRIVAL,
            DATA_EJECT,
            RESERVATION_GRANT,
            CREDIT_RETURN,
            BUFFER_ALLOC,
            BUFFER_FREE,
            PACKET_CREATED,
            PACKET_DELIVERED,
        } <= kinds
        assert FLIT_FORWARD not in kinds

    def test_fr_buffer_events_balance(self, mesh4, small_fr_config) -> None:
        network = FRNetwork(small_fr_config, mesh=mesh4, injection_rate=0.05, seed=1)
        collector = _observe(network)
        allocs = sum(1 for event in collector if event.kind == BUFFER_ALLOC)
        frees = sum(1 for event in collector if event.kind == BUFFER_FREE)
        assert allocs > 0
        # Some buffers can still be held at the final cycle, never the reverse.
        assert frees <= allocs

    def test_packet_delivered_value_is_latency(self, mesh4, small_fr_config) -> None:
        network = FRNetwork(small_fr_config, mesh=mesh4, injection_rate=0.05, seed=1)
        collector = _observe(network)
        delivered = [e for e in collector if e.kind == PACKET_DELIVERED]
        assert delivered
        assert all(event.value > 0 for event in delivered)


class TestVirtualChannelCoverage:
    def test_vc_emits_its_taxonomy(self, mesh4, small_vc_config) -> None:
        network = VCNetwork(small_vc_config, mesh=mesh4, injection_rate=0.05, seed=1)
        kinds = _kinds(_observe(network))
        assert {
            DATA_ARRIVAL,
            DATA_EJECT,
            FLIT_FORWARD,
            CREDIT_RETURN,
            BUFFER_ALLOC,
            BUFFER_FREE,
            PACKET_CREATED,
            PACKET_DELIVERED,
        } <= kinds
        assert CONTROL_ARRIVAL not in kinds
        assert RESERVATION_GRANT not in kinds

    def test_wormhole_probes_like_vc(self, mesh4) -> None:
        network = WormholeNetwork(
            WormholeConfig(buffers_per_input=8), mesh=mesh4, injection_rate=0.05, seed=1
        )
        kinds = _kinds(_observe(network))
        assert {DATA_ARRIVAL, FLIT_FORWARD, DATA_EJECT, PACKET_DELIVERED} <= kinds


class TestLifecycle:
    def test_detach_restores_every_hook(self, mesh4, small_fr_config) -> None:
        network = FRNetwork(small_fr_config, mesh=mesh4, injection_rate=0.05, seed=1)
        router = network.routers[0]
        originals = (
            router.on_control_arrival,
            router.on_data_arrival,
            router.eject_data,
            router.input_sched[0].on_buffer_event,
            network.on_packet_created,
        )
        probe = NetworkProbe(EventBus()).attach(network)
        probe.detach()
        assert (
            router.on_control_arrival,
            router.on_data_arrival,
            router.eject_data,
            router.input_sched[0].on_buffer_event,
            network.on_packet_created,
        ) == originals

    def test_probe_chains_existing_hooks(self, mesh4, small_fr_config) -> None:
        network = FRNetwork(small_fr_config, mesh=mesh4, injection_rate=0.05, seed=1)
        seen_by_prior_hook: list[int] = []
        network.routers[5].on_data_arrival = (
            lambda flit, node, cycle: seen_by_prior_hook.append(cycle)
        )
        collector = _observe(network)
        arrivals_at_5 = [
            e for e in collector if e.kind == DATA_ARRIVAL and e.node == 5
        ]
        assert len(seen_by_prior_hook) == len(arrivals_at_5) > 0

    def test_double_attach_rejected(self, mesh4, small_fr_config) -> None:
        network = FRNetwork(small_fr_config, mesh=mesh4, injection_rate=0.05, seed=1)
        probe = NetworkProbe(EventBus()).attach(network)
        with pytest.raises(RuntimeError, match="already attached"):
            probe.attach(network)
        probe.detach()

    def test_unknown_network_rejected(self) -> None:
        with pytest.raises(TypeError, match="cannot probe"):
            NetworkProbe(EventBus()).attach(object())  # type: ignore[arg-type]

    def test_unsubscribed_bus_installs_no_event_hooks(
        self, mesh4, small_fr_config
    ) -> None:
        network = FRNetwork(small_fr_config, mesh=mesh4, injection_rate=0.05, seed=1)
        bus = EventBus()
        bus.subscribe(DATA_EJECT, lambda event: None)
        probe = NetworkProbe(bus).attach(network)
        router = network.routers[0]
        # Only the wanted kind's hook is installed; the rest stay untouched.
        assert router.on_control_arrival is None
        assert router.on_reservation_grant is None
        assert router.input_sched[0].on_buffer_event is None
        probe.detach()
