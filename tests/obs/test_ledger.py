"""The run ledger itself: digests, verification, corruption, gc.

These are pure store-level tests -- no simulation.  Records are built from
synthetic :class:`ExperimentResult` values so each test runs in
milliseconds; the harness-level cache-hit digest properties (real
simulations replayed byte-identically) live in
``tests/harness/test_ledger_harness.py``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.config import FR6, FR13
from repro.baselines.vc.config import VC8
from repro.harness.experiment import ExperimentResult
from repro.harness.presets import get_preset
from repro.obs.ledger import (
    LedgerCorruptionError,
    LedgerError,
    RunLedger,
    canonical_json,
    content_digest,
    describe_record,
    format_run_diff,
)
from repro.topology.mesh import Mesh2D


def _result(load: float = 0.2, latency: float = 30.5) -> ExperimentResult:
    return ExperimentResult(
        config_name="FR6",
        offered_load=load,
        injection_rate=load / 10,
        packet_length=5,
        seed=1,
        accepted_load=load,
        mean_latency=latency,
        latency_ci_halfwidth=0.5,
        p95_latency=48.0,
        packets_measured=1507,
        cycles_simulated=1848,
        warmup_cycles=600,
        saturated=False,
        extras={"throughput_flits": 0.25},
    )


def _identity(ledger: RunLedger, config=FR6, load: float = 0.2, seed: int = 1,
              preset: str = "quick", **kwargs):
    return ledger.experiment_identity(
        config=config,
        offered_load=load,
        packet_length=5,
        seed=seed,
        preset=get_preset(preset),
        mesh=Mesh2D(4, 4),
        traffic="uniform",
        injection_process="periodic",
        streaming=False,
        check_invariants=False,
        network_kwargs=kwargs,
    )


@pytest.fixture()
def ledger(tmp_path):
    return RunLedger(tmp_path / "runs")


def test_round_trip_replays_byte_identically(ledger):
    identity = _identity(ledger)
    assert ledger.lookup(identity) is None  # cold store
    result = _result()
    ledger.record_experiment(identity, result)
    record = ledger.lookup(identity)
    assert record is not None
    replayed = ledger.replay_experiment(record)
    assert canonical_json(dataclasses.asdict(replayed)) == canonical_json(
        dataclasses.asdict(result)
    )
    assert (ledger.hits, ledger.misses, ledger.recorded) == (1, 1, 1)
    assert "1/2 cache hits" in ledger.summary()


def test_identity_distinguishes_every_axis(ledger):
    base = _identity(ledger)
    variants = [
        _identity(ledger, load=0.3),
        _identity(ledger, seed=2),
        _identity(ledger, preset="standard"),
        _identity(ledger, config=FR13),
        _identity(ledger, config=VC8),
        _identity(ledger, injection_lead=2),
    ]
    hashes = {ledger.identity_hash(base)} | {
        ledger.identity_hash(v) for v in variants
    }
    assert len(hashes) == 1 + len(variants)


def test_bit_flip_is_refused_never_silently_replayed(ledger, capsys):
    identity = _identity(ledger)
    ledger.record_experiment(identity, _result(latency=30.5))
    key = ledger.identity_hash(identity)
    path = ledger.record_path(key)
    # Flip the stored latency: the content/result digests no longer match.
    path.write_text(path.read_text().replace("30.5", "99.5"))
    with pytest.raises(LedgerCorruptionError, match="refusing to replay"):
        ledger.load(key)
    # lookup degrades corruption to a loud miss, so callers re-simulate...
    assert ledger.lookup(identity) is None
    assert ledger.corrupt == 1
    assert "re-simulating" in capsys.readouterr().err
    # ...and the re-record atomically heals the store.
    ledger.record_experiment(identity, _result(latency=30.5))
    record = ledger.lookup(identity)
    assert record is not None
    assert record["result"]["mean_latency"] == 30.5


def test_truncated_json_is_corruption_not_a_crash(ledger):
    identity = _identity(ledger)
    ledger.record_experiment(identity, _result())
    path = ledger.record_path(ledger.identity_hash(identity))
    path.write_text(path.read_text()[: 40])
    with pytest.raises(LedgerCorruptionError, match="not valid JSON"):
        ledger.load(ledger.identity_hash(identity))
    assert ledger.lookup(identity) is None


def test_record_stored_under_wrong_name_is_refused(ledger):
    identity_a = _identity(ledger, load=0.2)
    identity_b = _identity(ledger, load=0.3)
    ledger.record_experiment(identity_a, _result(load=0.2))
    key_a = ledger.identity_hash(identity_a)
    key_b = ledger.identity_hash(identity_b)
    # A valid record filed under the wrong hash must not replay as B.
    ledger.record_path(key_b).write_text(ledger.record_path(key_a).read_text())
    with pytest.raises(LedgerCorruptionError, match="stored under"):
        ledger.load(key_b)
    assert ledger.lookup(identity_b) is None


def test_verify_catches_in_memory_tampering(ledger):
    identity = _identity(ledger)
    record = ledger.record_experiment(identity, _result())
    tampered = json.loads(json.dumps(record))
    tampered["result"]["mean_latency"] = 1.0
    with pytest.raises(LedgerCorruptionError):
        RunLedger.verify(tampered)
    RunLedger.verify(json.loads(json.dumps(record)))  # untouched copy passes


def test_code_digest_edit_in_closure_forces_miss(ledger, tmp_path, monkeypatch):
    identity = _identity(ledger)
    ledger.record_experiment(identity, _result())

    import repro.obs.ledger as ledger_module

    real_source = ledger_module._module_source

    def edited(module: str) -> bytes:
        source = real_source(module)
        if module == "repro.core.network":  # reachable from the FR entry
            return source + b"\n# edited\n"
        return source

    monkeypatch.setattr(ledger_module, "_module_source", edited)
    fresh = RunLedger(tmp_path / "runs")  # digests cache per instance
    edited_identity = _identity(fresh)
    assert fresh.identity_hash(edited_identity) != ledger.identity_hash(identity)
    assert fresh.lookup(edited_identity) is None


def test_code_digest_edit_outside_closure_still_hits(ledger, tmp_path, monkeypatch):
    identity = _identity(ledger)  # an FR run
    ledger.record_experiment(identity, _result())

    import repro.obs.ledger as ledger_module

    real_source = ledger_module._module_source

    def edited(module: str) -> bytes:
        source = real_source(module)
        if module == "repro.baselines.wormhole.network":  # WH-only module
            return source + b"\n# edited\n"
        return source

    monkeypatch.setattr(ledger_module, "_module_source", edited)
    fresh = RunLedger(tmp_path / "runs")
    assert fresh.lookup(_identity(fresh)) is not None


def test_gc_keeps_current_evicts_corrupt_and_stale(ledger, tmp_path, monkeypatch):
    identity = _identity(ledger)
    ledger.record_experiment(identity, _result())
    # A corrupt neighbour and a stray temp file from an interrupted write.
    (ledger.root / ("f" * 64 + ".json")).write_text("{not json")
    (ledger.root / "whatever.12345.tmp").write_text("partial")
    kept, evicted = RunLedger(tmp_path / "runs").gc()
    assert (kept, evicted) == (1, 1)
    assert not list(ledger.root.glob("*.tmp"))

    # After a (simulated) edit to the FR closure the survivor is stale too.
    import repro.obs.ledger as ledger_module

    real_source = ledger_module._module_source
    monkeypatch.setattr(
        ledger_module,
        "_module_source",
        lambda module: real_source(module) + (b"#x" if module == "repro.core.network" else b""),
    )
    kept, evicted = RunLedger(tmp_path / "runs").gc()
    assert (kept, evicted) == (0, 1)


def test_gc_wipe_all_empties_the_store(ledger):
    ledger.record_experiment(_identity(ledger, load=0.2), _result(load=0.2))
    ledger.record_experiment(_identity(ledger, load=0.3), _result(load=0.3))
    kept, evicted = ledger.gc(wipe_all=True)
    assert (kept, evicted) == (0, 2)
    assert not list(ledger.root.glob("*.json"))


def test_resolve_prefix(ledger):
    ledger.record_experiment(_identity(ledger, load=0.2), _result(load=0.2))
    ledger.record_experiment(_identity(ledger, load=0.3), _result(load=0.3))
    hashes = sorted(path.stem for path in ledger.root.glob("*.json"))
    assert ledger.resolve(hashes[0][:10]) == hashes[0]
    with pytest.raises(LedgerError, match="no run record matching"):
        ledger.resolve("zzzz")
    with pytest.raises(LedgerError, match="ambiguous"):
        ledger.resolve("")  # every record matches the empty prefix


def test_throughput_round_trip(ledger):
    identity = ledger.throughput_identity(
        config=FR6,
        offered_load=0.5,
        packet_length=5,
        seed=1,
        preset=get_preset("quick"),
        mesh=Mesh2D(4, 4),
        check_invariants=False,
        network_kwargs={},
    )
    assert identity["kind"] == "throughput"
    ledger.record_throughput(identity, 0.4987)
    record = ledger.lookup(identity)
    assert record is not None
    assert ledger.replay_throughput(record) == 0.4987


def test_bench_round_trip(ledger):
    identity = ledger.bench_identity(
        "FR", {"label": "FR6", "config": "FR6", "offered_load": 0.5}
    )
    ledger.record_bench(
        identity,
        {"cycles": 1844, "packets_measured": 3777},
        profile={"cycles_per_second": 550.0},
    )
    record = ledger.lookup(identity)
    assert record is not None
    assert record["kind"] == "bench"
    assert record["result"]["cycles"] == 1844
    line = describe_record(record)
    assert "bench" in line and "FR6" in line and "cps=550.0" in line


def test_describe_and_diff_render(ledger):
    identity_a = _identity(ledger, load=0.2)
    identity_b = _identity(ledger, load=0.3)
    record_a = ledger.record_experiment(identity_a, _result(load=0.2, latency=30.0))
    record_b = ledger.record_experiment(identity_b, _result(load=0.3, latency=35.0))
    line = describe_record(record_a)
    assert line.startswith(ledger.identity_hash(identity_a)[:12])
    assert "FR6 load=0.20" in line and "latency=30.0" in line
    diff = format_run_diff(record_a, record_b)
    assert "mean_latency" in diff and "+5.00" in diff
    assert "offered_load" in diff and "+0.10" in diff


def test_wall_clock_never_reaches_digests(ledger):
    """The result digest covers only the result block; profile/attribution
    metadata (the only wall-clock carriers) stay outside it."""
    identity = _identity(ledger)
    record = ledger.record_experiment(identity, _result())
    assert record["result_digest"] == content_digest(record["result"])
    assert "wall" not in canonical_json(record["identity"])
    assert "wall" not in canonical_json(record["result"])
