"""Unit tests for the metrics registry and its standard instruments."""

from __future__ import annotations

import pytest

from repro.baselines.vc.network import VCNetwork
from repro.core.network import FRNetwork
from repro.obs.metrics import Counter, CycleHistogram, Gauge, MetricsRegistry
from repro.sim.kernel import Simulator


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self) -> None:
        counter = Counter("drops")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_last_and_mean(self) -> None:
        gauge = Gauge("occupancy")
        with pytest.raises(ValueError):
            gauge.mean
        gauge.set(2.0)
        gauge.set(4.0)
        assert gauge.value == 4.0
        assert gauge.mean == 3.0
        assert gauge.samples == 2

    def test_histogram_bins_and_mean(self) -> None:
        histogram = CycleHistogram("queue", bin_width=5)
        for value in (0, 3, 7, 12):
            histogram.record(value)
        assert histogram.bins() == [(0, 2), (5, 1), (10, 1)]
        assert histogram.mean == pytest.approx(5.5)


class TestMetricsRegistry:
    def test_rejects_bad_cadence(self) -> None:
        with pytest.raises(ValueError):
            MetricsRegistry(sample_every=0)

    def test_get_or_create_returns_same_instrument(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_duplicate_column_rejected(self) -> None:
        registry = MetricsRegistry()
        registry.add_sampler("col", lambda network, cycle: 0.0)
        with pytest.raises(ValueError, match="duplicate"):
            registry.add_sampler("col", lambda network, cycle: 1.0)

    def test_sampling_cadence_is_cycle_determined(self, mesh4, small_fr_config) -> None:
        network = FRNetwork(
            small_fr_config, mesh=mesh4, injection_rate=0.02, seed=3
        )
        registry = MetricsRegistry(sample_every=50)
        registry.install_standard_instruments(network)
        simulator = Simulator(network, observers=(registry,))
        # Chunked stepping must not change which cycles get sampled.
        simulator.step(70)
        simulator.step(130)
        cycles = [row["cycle"] for row in registry.timeseries]
        assert cycles == [0.0, 50.0, 100.0, 150.0]

    def test_standard_instruments_fr_columns(self, mesh4, small_fr_config) -> None:
        network = FRNetwork(
            small_fr_config, mesh=mesh4, injection_rate=0.05, seed=1
        )
        registry = MetricsRegistry(sample_every=20)
        registry.install_standard_instruments(network)
        Simulator(network, observers=(registry,)).step(200)
        row = registry.timeseries[-1]
        assert set(row) == {
            "cycle",
            "channel_utilization",
            "buffer_occupancy",
            "reservation_occupancy",
            "credit_stalls",
            "injection_backpressure",
        }
        busy = [r for r in registry.timeseries if r["channel_utilization"] > 0]
        assert busy, "a loaded network should show nonzero channel utilization"
        assert all(0.0 <= r["channel_utilization"] <= 1.0 for r in registry.timeseries)

    def test_standard_instruments_vc_skips_fr_columns(
        self, mesh4, small_vc_config
    ) -> None:
        network = VCNetwork(
            small_vc_config, mesh=mesh4, injection_rate=0.05, seed=1
        )
        registry = MetricsRegistry(sample_every=20)
        registry.install_standard_instruments(network)
        Simulator(network, observers=(registry,)).step(100)
        row = registry.timeseries[-1]
        assert "reservation_occupancy" not in row
        assert "credit_stalls" not in row
        assert "buffer_occupancy" in row

    def test_summary_reports_rows_and_gauge_means(self, mesh4, small_fr_config) -> None:
        network = FRNetwork(
            small_fr_config, mesh=mesh4, injection_rate=0.05, seed=1
        )
        registry = MetricsRegistry(sample_every=50)
        registry.install_standard_instruments(network)
        Simulator(network, observers=(registry,)).step(100)
        summary = registry.summary()
        assert summary["sample_every"] == 50
        assert summary["rows"] == len(registry.timeseries) == 2
        assert "buffer_occupancy" in summary["gauges"]
        assert set(summary["gauges"]["buffer_occupancy"]) == {"last", "mean"}
