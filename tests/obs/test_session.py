"""ObsSession end-to-end: one observed experiment, every artifact written."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.core.config import FRConfig
from repro.harness.experiment import run_experiment
from repro.obs.manifest import MANIFEST_SCHEMA, build_manifest, git_sha
from repro.obs.session import ObsSession
from repro.topology.mesh import Mesh2D


def _observed_point(tmp_path: Path, **session_kwargs) -> tuple[ObsSession, dict[str, str]]:
    session = ObsSession(
        manifest_out=str(tmp_path / "obs_manifest.json"),
        bench_out=str(tmp_path / "BENCH_obs.json"),
        sample_every=50,
        **session_kwargs,
    )
    config = FRConfig(data_buffers_per_input=6)
    result = run_experiment(
        config,
        offered_load=0.3,
        seed=5,
        preset="quick",
        mesh=Mesh2D(4, 4),
        obs=session,
    )
    artifacts = session.finalize(
        config=config,
        seed=5,
        preset="quick",
        offered_load=0.3,
        packet_length=result.packet_length,
        command="frfc obs (test)",
    )
    return session, artifacts


class TestFullSession:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("obs")
        session, artifacts = _observed_point(
            tmp_path,
            events_out=str(tmp_path / "events.jsonl"),
            trace_out=str(tmp_path / "trace.json"),
            metrics_out=str(tmp_path / "metrics.csv"),
            profile=True,
        )
        return tmp_path, session, artifacts

    def test_all_artifacts_exist(self, run) -> None:
        _, _, artifacts = run
        assert set(artifacts) == {"events", "trace", "metrics", "bench", "manifest"}
        for path in artifacts.values():
            assert Path(path).is_file()

    def test_manifest_contents(self, run) -> None:
        _, session, artifacts = run
        manifest = json.loads(Path(artifacts["manifest"]).read_text(encoding="utf-8"))
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["seed"] == 5
        assert manifest["preset"] == "quick"
        assert manifest["offered_load"] == 0.3
        assert manifest["mesh"] == "4x4"
        assert manifest["config"]["type"] == "FRConfig"
        assert manifest["config"]["data_buffers_per_input"] == 6
        assert manifest["command"] == "frfc obs (test)"
        assert manifest["events_emitted"] == session.bus.events_emitted > 0
        assert set(manifest["artifacts"]) == {"events", "trace", "metrics", "bench"}
        assert "metrics" in manifest

    def test_bench_reports_phases_and_rate(self, run) -> None:
        _, _, artifacts = run
        bench = json.loads(Path(artifacts["bench"]).read_text(encoding="utf-8"))
        assert bench["schema"] == "frfc-obs-bench/1"
        assert bench["cycles"] > 0
        assert bench["cycles_per_second"] > 0
        assert {"warmup", "sample", "drain"} <= set(bench["phases"])
        for phase in bench["phases"].values():
            assert phase["cycles"] >= 0
            assert phase["wall_seconds"] >= 0

    def test_trace_is_perfetto_loadable_json(self, run) -> None:
        _, _, artifacts = run
        payload = json.loads(Path(artifacts["trace"]).read_text(encoding="utf-8"))
        assert payload["traceEvents"]
        assert {"b", "e"} <= {record["ph"] for record in payload["traceEvents"]}

    def test_session_detached_after_finalize(self, run) -> None:
        _, session, _ = run
        assert session._probe is None


class TestSelectiveOutputs:
    def test_metrics_only_session_skips_probe(self, tmp_path) -> None:
        session, artifacts = _observed_point(
            tmp_path, metrics_out=str(tmp_path / "m.csv")
        )
        assert session.collector is None
        assert session.profiler is None
        assert set(artifacts) == {"metrics", "manifest"}
        text = (tmp_path / "m.csv").read_text(encoding="utf-8")
        assert text.startswith("cycle,channel_utilization")
        assert len(text.splitlines()) > 2

    def test_double_attach_rejected(self, mesh4, small_fr_config) -> None:
        from repro.core.network import FRNetwork

        session = ObsSession(metrics_out="unused.csv")
        network = FRNetwork(small_fr_config, mesh=mesh4, injection_rate=0.05, seed=1)
        session.attach(network)
        with pytest.raises(RuntimeError, match="already attached"):
            session.attach(network)


class TestManifest:
    def test_git_sha_is_real(self) -> None:
        sha = git_sha()
        assert re.fullmatch(r"[0-9a-f]{40}", sha) or sha == "unknown"

    def test_build_manifest_minimal(self) -> None:
        manifest = build_manifest(config={"k": 1}, seed=9)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["seed"] == 9
        assert manifest["config"] == {"k": 1}
        assert "preset" not in manifest
        assert "events_dropped" not in manifest

    def test_build_manifest_reports_truncation(self) -> None:
        manifest = build_manifest(config={}, seed=1, events_dropped=42)
        assert manifest["events_dropped"] == 42


class TestSpatialSession:
    def test_spatial_and_heatmap_artifacts(self, tmp_path) -> None:
        from repro.obs.heatmap import validate_heatmap

        session, artifacts = _observed_point(
            tmp_path,
            spatial_out=str(tmp_path / "spatial.csv"),
            heatmap_out=str(tmp_path / "heatmap.json"),
        )
        assert {"spatial", "heatmap", "manifest"} <= set(artifacts)
        header = (tmp_path / "spatial.csv").read_text().splitlines()[0]
        assert header == "cycle,window_start,window_end,metric,node,port,x,y,value"
        payload = json.loads((tmp_path / "heatmap.json").read_text())
        validate_heatmap(payload)
        # The frame aggregates the measurement window run_experiment noted.
        assert session.window is not None
        start, end = session.window
        window = payload["frames"][0]["window"]
        assert start <= window[0] and window[1] <= end
        # The manifest carries the spatial shape summary.
        manifest = json.loads((tmp_path / "obs_manifest.json").read_text())
        assert manifest["spatial"]["rows"] > 0
        assert "buffer_occupancy" in manifest["spatial"]["node_metrics"]

    def test_declared_artifacts_match_requested_outputs(self, tmp_path) -> None:
        session = ObsSession(
            metrics_out=str(tmp_path / "m.csv"),
            heatmap_out=str(tmp_path / "h.json"),
            manifest_out=str(tmp_path / "man.json"),
        )
        assert set(session.declared_artifacts()) == {
            "metrics",
            "heatmap",
            "manifest",
        }
        # Empty-string outputs (sample in memory, write nothing) stay out.
        silent = ObsSession(heatmap_out="", manifest_out="")
        assert silent.spatial is not None
        assert silent.declared_artifacts() == {}


class TestAttributionSession:
    def test_attribution_artifact_and_waterfall(self, tmp_path) -> None:
        from repro.obs.report import validate_attribution

        session, artifacts = _observed_point(
            tmp_path,
            trace_out=str(tmp_path / "trace.json"),
            attribution_out=str(tmp_path / "attribution.json"),
        )
        assert "attribution" in artifacts
        payload = json.loads((tmp_path / "attribution.json").read_text())
        validate_attribution(payload)
        (summary,) = payload["summaries"]
        assert summary["label"] == "FR6 load=0.30"
        assert summary["model"] == "fr"
        # note_window came from run_experiment, so warmup packets are
        # excluded from the rollup (fewer than the attributor saw in total).
        assert session.attributor is not None
        assert summary["packets"] <= len(session.attributor.records)
        # The trace nests component spans inside the packet async spans.
        trace = json.loads((tmp_path / "trace.json").read_text())
        component_spans = [
            record
            for record in trace["traceEvents"]
            if record.get("cat") == "packet"
            and record["name"] in ("source_queueing", "reservation_wait",
                                   "channel_traversal", "ejection")
        ]
        assert component_spans

    def test_attribution_only_session_attaches_probe(self, tmp_path) -> None:
        session, artifacts = _observed_point(
            tmp_path, attribution_out=str(tmp_path / "a.json")
        )
        assert session.collector is None  # no event log kept...
        assert session.attributor is not None  # ...but the probe fed records
        assert session.attributor.records
        assert set(artifacts) == {"attribution", "manifest"}
