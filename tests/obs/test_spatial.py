"""The spatial metrics registry: cadence, window semantics, stable exports.

The per-coordinate registry inherits three contracts from the scalar one
and adds a fourth:

* construction rejects a non-positive sampling cadence;
* sampling windows are half-open ``[start, end)`` and tile the run with no
  gap or overlap (the ``tests/stats/test_window_semantics.py`` convention);
* a re-entrant attach never duplicates the boundary-cycle row;
* the CSV and heatmap exporters are byte-stable across repeated exports.
"""

from __future__ import annotations

import pytest

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.obs.heatmap import build_heatmap, render_ascii, render_svg, write_heatmap_json
from repro.obs.spatial import SpatialMetricsRegistry, write_spatial_csv
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D


def _fr_network(injection_rate: float = 0.08, seed: int = 11) -> FRNetwork:
    return FRNetwork(
        FRConfig(data_buffers_per_input=6),
        mesh=Mesh2D(4, 4),
        injection_rate=injection_rate,
        seed=seed,
    )


def _observed(cycles: int = 300, sample_every: int = 50) -> tuple:
    network = _fr_network()
    registry = SpatialMetricsRegistry(sample_every=sample_every)
    registry.install_standard_instruments(network)
    network.set_measure_window(0, cycles)
    Simulator(network, observers=(registry,)).step(cycles)
    return network, registry


class TestConstruction:
    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_bad_cadence(self, bad: int) -> None:
        with pytest.raises(ValueError, match="cadence"):
            SpatialMetricsRegistry(sample_every=bad)

    def test_rejects_duplicate_metric(self) -> None:
        registry = SpatialMetricsRegistry()
        registry.add_node_sampler("m", "level", lambda network, cycle: [])
        with pytest.raises(ValueError, match="duplicate"):
            registry.add_node_sampler("m", "rate", lambda network, cycle: [])

    def test_rejects_unknown_kind(self) -> None:
        registry = SpatialMetricsRegistry()
        with pytest.raises(ValueError, match="kind"):
            registry.add_node_sampler("m", "gauge", lambda network, cycle: [])

    def test_rejects_double_install(self) -> None:
        network = _fr_network()
        registry = SpatialMetricsRegistry()
        registry.install_standard_instruments(network)
        with pytest.raises(RuntimeError, match="already installed"):
            registry.install_standard_instruments(network)


class TestWindowSemantics:
    def test_windows_are_half_open_and_tile_the_run(self) -> None:
        _, registry = _observed(cycles=300, sample_every=50)
        rows = registry.samples
        assert [row.cycle for row in rows] == [0, 50, 100, 150, 200, 250]
        # The sampled cycle is the last member of its window...
        for row in rows:
            assert row.window_end == row.cycle + 1
            assert row.window_start < row.window_end
        # ...and consecutive windows tile with no gap or overlap.
        for earlier, later in zip(rows, rows[1:]):
            assert later.window_start == earlier.window_end

    def test_rows_in_window_is_half_open(self) -> None:
        _, registry = _observed(cycles=300, sample_every=50)
        # Row at cycle 100 covers [52, 101); [0, 101) holds rows 0, 50, 100.
        held = registry.rows_in_window(0, 101)
        assert [row.cycle for row in held] == [0, 50, 100]
        # An end inside row 100's window excludes it (end is open).
        assert [row.cycle for row in registry.rows_in_window(0, 100)] == [0, 50]

    def test_reentrant_attach_does_not_duplicate_boundary_row(self) -> None:
        network = _fr_network()
        registry = SpatialMetricsRegistry(sample_every=50)
        registry.install_standard_instruments(network)
        simulator = Simulator(network, observers=(registry,))
        simulator.step(100)
        rows_before = len(registry.samples)
        boundary = registry.samples[-1].cycle
        # A second check() on an already-sampled boundary cycle (as a
        # re-entrant attach or chunked driver would issue) must be a no-op.
        registry.check(network, boundary)
        assert len(registry.samples) == rows_before
        assert registry.samples[-1].cycle == boundary

    def test_chunked_stepping_matches_one_shot(self) -> None:
        one_shot = _fr_network()
        whole = SpatialMetricsRegistry(sample_every=50)
        whole.install_standard_instruments(one_shot)
        Simulator(one_shot, observers=(whole,)).step(300)

        chunked_net = _fr_network()
        chunked = SpatialMetricsRegistry(sample_every=50)
        chunked.install_standard_instruments(chunked_net)
        simulator = Simulator(chunked_net, observers=(chunked,))
        for chunk in (7, 43, 50, 100, 100):
            simulator.step(chunk)

        assert [row.cycle for row in whole.samples] == [
            row.cycle for row in chunked.samples
        ]
        assert [row.nodes for row in whole.samples] == [
            row.nodes for row in chunked.samples
        ]
        assert [row.links for row in whole.samples] == [
            row.links for row in chunked.samples
        ]


class TestInstruments:
    def test_fr_installs_reservation_and_stall_instruments(self) -> None:
        _, registry = _observed()
        assert set(registry.node_metrics) == {
            "buffer_occupancy",
            "injection_backpressure",
            "reservation_occupancy",
            "credit_stalls",
        }
        assert registry.link_metrics == {"link_utilization": "rate"}

    def test_vc_installs_only_generic_instruments(self) -> None:
        network = VCNetwork(
            VCConfig(num_vcs=2, buffers_per_vc=4),
            mesh=Mesh2D(4, 4),
            injection_rate=0.05,
            seed=11,
        )
        registry = SpatialMetricsRegistry(sample_every=50)
        registry.install_standard_instruments(network)
        Simulator(network, observers=(registry,)).step(200)
        assert set(registry.node_metrics) == {
            "buffer_occupancy",
            "injection_backpressure",
        }
        assert registry.samples, "VC network sampled no rows"

    def test_every_row_has_one_value_per_coordinate(self) -> None:
        network, registry = _observed()
        nodes = len(network.routers)
        for row in registry.samples:
            for name, values in row.nodes.items():
                assert len(values) == nodes, name
            for name, values in row.links.items():
                assert len(values) == len(registry.link_keys), name

    def test_link_utilization_bounded_by_one(self) -> None:
        _, registry = _observed(cycles=300)
        for row in registry.samples:
            for value in row.links["link_utilization"]:
                assert 0.0 <= value <= 1.0

    def test_summary_reports_shape_and_peaks(self) -> None:
        _, registry = _observed()
        summary = registry.summary()
        assert summary["rows"] == len(registry.samples)
        assert summary["sample_every"] == 50
        assert "buffer_occupancy" in summary["node_metrics"]
        assert summary["peaks"]["buffer_occupancy"]["value"] > 0


class TestStableExports:
    def test_spatial_csv_byte_stable(self, tmp_path) -> None:
        network, registry = _observed()
        first = tmp_path / "a.csv"
        second = tmp_path / "b.csv"
        rows_a = write_spatial_csv(registry, network, first)
        rows_b = write_spatial_csv(registry, network, second)
        assert rows_a == rows_b > 0
        assert first.read_bytes() == second.read_bytes()

    def test_heatmap_json_byte_stable(self, tmp_path) -> None:
        network, registry = _observed()
        payload = build_heatmap(registry, network.mesh, label="stable")
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_heatmap_json(payload, first)
        write_heatmap_json(
            build_heatmap(registry, network.mesh, label="stable"), second
        )
        assert first.read_bytes() == second.read_bytes()

    def test_renderers_pure_functions_of_payload(self) -> None:
        network, registry = _observed()
        payload = build_heatmap(registry, network.mesh, label="stable")
        assert render_ascii(payload, "buffer_occupancy") == render_ascii(
            payload, "buffer_occupancy"
        )
        assert render_svg(payload, "buffer_occupancy") == render_svg(
            payload, "buffer_occupancy"
        )
