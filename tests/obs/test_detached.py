"""Observability must be free when unused and invisible when used.

Two properties, pinned with the order-permutation digest helpers from
``repro.analysis.permute``:

* a run with a probe attached-then-detached before stepping emits zero
  events and is digest-identical to a run that never saw the obs layer;
* a run observed end-to-end (probe attached while stepping) is *still*
  digest-identical -- the probe only reads, never perturbs.
"""

from __future__ import annotations

import pytest

from repro.analysis.permute import digest_network
from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.baselines.wormhole.network import WormholeConfig, WormholeNetwork
from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.obs.events import EventBus, EventCollector
from repro.obs.probe import NetworkProbe
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D

CYCLES = 400

BUILDERS = [
    pytest.param(
        lambda: FRNetwork(
            FRConfig(data_buffers_per_input=6),
            mesh=Mesh2D(4, 4),
            injection_rate=0.05,
            seed=11,
        ),
        id="fr",
    ),
    pytest.param(
        lambda: VCNetwork(
            VCConfig(num_vcs=2, buffers_per_vc=4),
            mesh=Mesh2D(4, 4),
            injection_rate=0.05,
            seed=11,
        ),
        id="vc",
    ),
    pytest.param(
        lambda: WormholeNetwork(
            WormholeConfig(buffers_per_input=8),
            mesh=Mesh2D(4, 4),
            injection_rate=0.05,
            seed=11,
        ),
        id="wormhole",
    ),
]


def _run(network, label: str):
    network.set_measure_window(0, CYCLES)
    Simulator(network).step(CYCLES)
    return digest_network(network, CYCLES, label)


@pytest.mark.parametrize("build", BUILDERS)
def test_detached_probe_adds_zero_events_and_identical_digest(build) -> None:
    baseline = _run(build(), "never-observed")

    network = build()
    bus = EventBus()
    collector = EventCollector()
    bus.subscribe_all(collector)
    NetworkProbe(bus).attach(network).detach()
    digest = _run(network, "attached-then-detached")

    assert len(collector) == 0
    assert bus.events_emitted == 0
    diff = baseline.diff_fields(digest)
    assert not diff, f"detached probe changed the run: {diff}"
    assert baseline.hexdigest() == digest.hexdigest()


@pytest.mark.parametrize("build", BUILDERS)
def test_attached_probe_is_a_pure_observer(build) -> None:
    baseline = _run(build(), "never-observed")

    network = build()
    bus = EventBus()
    collector = EventCollector()
    bus.subscribe_all(collector)
    probe = NetworkProbe(bus).attach(network)
    digest = _run(network, "observed")
    probe.detach()

    assert len(collector) > 0
    diff = baseline.diff_fields(digest)
    assert not diff, f"attached probe perturbed the run: {diff}"
    assert baseline.hexdigest() == digest.hexdigest()


SEEDED_BUILDERS = {
    "fr": lambda seed: FRNetwork(
        FRConfig(data_buffers_per_input=6),
        mesh=Mesh2D(4, 4),
        injection_rate=0.05,
        seed=seed,
    ),
    "vc": lambda seed: VCNetwork(
        VCConfig(num_vcs=2, buffers_per_vc=4),
        mesh=Mesh2D(4, 4),
        injection_rate=0.05,
        seed=seed,
    ),
    "wormhole": lambda seed: WormholeNetwork(
        WormholeConfig(buffers_per_input=8),
        mesh=Mesh2D(4, 4),
        injection_rate=0.05,
        seed=seed,
    ),
}


@pytest.mark.parametrize("model", sorted(SEEDED_BUILDERS))
@pytest.mark.parametrize("seed", [11, 23, 47])
def test_spatial_registry_is_digest_neutral(model: str, seed: int) -> None:
    """A SpatialMetricsRegistry riding the cycle-hook slot samples every
    coordinate yet leaves the run digest-identical to an unobserved one."""
    from repro.obs.spatial import SpatialMetricsRegistry

    reseeded = SEEDED_BUILDERS[model]
    baseline = _run(reseeded(seed), "never-observed")

    network = reseeded(seed)
    registry = SpatialMetricsRegistry(sample_every=50)
    registry.install_standard_instruments(network)
    network.set_measure_window(0, CYCLES)
    Simulator(network, observers=(registry,)).step(CYCLES)
    digest = digest_network(network, CYCLES, "spatially-observed")

    assert registry.samples, "the registry sampled nothing"
    diff = baseline.diff_fields(digest)
    assert not diff, f"spatial registry perturbed the run: {diff}"
    assert baseline.hexdigest() == digest.hexdigest()


@pytest.mark.parametrize("build", BUILDERS)
def test_progress_hook_is_digest_neutral(build) -> None:
    """A ProgressReporter riding the cycle-hook slot (as the ledgered sweep
    attaches it) must leave the run digest-identical to an unobserved one."""
    import io

    from repro.obs.progress import ProgressReporter

    baseline = _run(build(), "never-observed")

    network = build()
    reporter = ProgressReporter(stream=io.StringIO(), heartbeat_cycles=50)
    reporter.begin_point(index=1, total=1, label="digest-check")
    network.set_measure_window(0, CYCLES)
    Simulator(network, observers=(reporter,)).step(CYCLES)
    reporter.end_point(cache_hit=False)
    digest = digest_network(network, CYCLES, "progress-observed")

    assert reporter._point_cycles == CYCLES  # the hook really ran
    diff = baseline.diff_fields(digest)
    assert not diff, f"progress reporter perturbed the run: {diff}"
    assert baseline.hexdigest() == digest.hexdigest()
