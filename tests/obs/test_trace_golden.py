"""The FR trace format is pinned byte-for-byte across the bus refactor.

``tests/obs/fixtures/fr_format_packet.golden.txt`` was generated with the
pre-bus ``repro.sim.tracelog.TraceLog`` (hooks wired by hand into the FR
routers).  The bus-backed replacement must reproduce it exactly.  Regenerate
with ``FRFC_REGEN_GOLDEN=1 pytest tests/obs/test_trace_golden.py`` after an
*intentional* format change, and say so in the commit message.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.baselines.wormhole.network import WormholeConfig, WormholeNetwork
from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.obs.trace import TraceLog
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D

GOLDEN = Path(__file__).parent / "fixtures" / "fr_format_packet.golden.txt"

# The recipe behind the fixture (mirrored in its `#` header line).
PACKET_ID = 1
SEED = 1
RATE = 0.03
CYCLES = 300
HEADER = (
    f"# packet_id={PACKET_ID} seed={SEED} rate={RATE} mesh=4x4 "
    f"cycles={CYCLES} config=FR(data_buffers_per_input=6)"
)


def _traced_fr_output() -> str:
    network = FRNetwork(
        FRConfig(data_buffers_per_input=6),
        mesh=Mesh2D(4, 4),
        injection_rate=RATE,
        seed=SEED,
    )
    log = TraceLog()
    log.attach(network)
    Simulator(network).step(CYCLES)
    log.detach()
    return log.format_packet(PACKET_ID)


def test_fr_format_packet_matches_golden() -> None:
    rendered = HEADER + "\n" + _traced_fr_output() + "\n"
    if os.environ.get("FRFC_REGEN_GOLDEN"):
        GOLDEN.write_text(rendered, encoding="utf-8")
        pytest.skip("golden fixture regenerated")
    assert GOLDEN.read_text(encoding="utf-8") == rendered


def test_fr_kinds_unchanged() -> None:
    """The FR stream still contains exactly the three historical kinds."""
    network = FRNetwork(
        FRConfig(data_buffers_per_input=6),
        mesh=Mesh2D(4, 4),
        injection_rate=RATE,
        seed=SEED,
    )
    log = TraceLog()
    log.attach(network)
    Simulator(network).step(CYCLES)
    log.detach()
    kinds = {event.kind for event in log.events}
    assert kinds == {"control_arrival", "data_arrival", "data_eject"}
    assert all(event.cycle >= 0 for event in log.events)


def test_tracelog_importable_from_historic_module() -> None:
    from repro.sim.tracelog import TraceLog as LegacyTraceLog

    assert LegacyTraceLog is TraceLog


@pytest.mark.parametrize(
    "make_network",
    [
        pytest.param(
            lambda mesh: VCNetwork(
                VCConfig(num_vcs=2, buffers_per_vc=4),
                mesh=mesh,
                injection_rate=0.05,
                seed=2,
            ),
            id="vc",
        ),
        pytest.param(
            lambda mesh: WormholeNetwork(
                WormholeConfig(buffers_per_input=8),
                mesh=mesh,
                injection_rate=0.05,
                seed=2,
            ),
            id="wormhole",
        ),
    ],
)
def test_trace_now_covers_vc_and_wormhole(make_network) -> None:
    """The point of the port: non-FR packets get timelines too."""
    network = make_network(Mesh2D(4, 4))
    log = TraceLog()
    log.attach(network)
    Simulator(network).step(400)
    log.detach()
    assert len(log.events) > 0
    kinds = {event.kind for event in log.events}
    assert "data_arrival" in kinds
    assert "flit_forward" in kinds
    traced_packet = log.events[0].packet_id
    timeline = log.packet_events(traced_packet)
    assert timeline
    assert [e.cycle for e in timeline] == sorted(e.cycle for e in timeline)
    assert "flit #" in log.format_packet(traced_packet)
