"""Attribution reports: aggregation math, table, JSON schema, waterfall."""

from __future__ import annotations

import json

import pytest

from repro.obs.attribution import COMPONENTS, PacketAttribution, Segment
from repro.obs.report import (
    ATTRIBUTION_SCHEMA,
    AttributionSummary,
    build_attribution_report,
    format_attribution_table,
    iter_waterfall_records,
    validate_attribution,
    write_attribution_json,
)


def _record(
    packet_id: int,
    latency_parts: dict[str, int],
    created: int = 0,
    model: str = "fr",
) -> PacketAttribution:
    components = dict.fromkeys(COMPONENTS, 0)
    components.update(latency_parts)
    latency = sum(components.values())
    segments = []
    cursor = created
    for name in COMPONENTS:
        if components[name]:
            segments.append(Segment(name, cursor, cursor + components[name], 0))
            cursor += components[name]
    return PacketAttribution(
        packet_id=packet_id,
        source=0,
        destination=5,
        created_cycle=created,
        delivered_cycle=created + latency,
        model=model,
        critical_flit=0,
        hops=2,
        denies=0,
        measured=True,
        components=components,
        segments=tuple(segments),
    )


RECORDS = [
    _record(1, {"source_queueing": 4, "channel_traversal": 8, "reservation_wait": 2}),
    _record(2, {"source_queueing": 6, "channel_traversal": 8, "reservation_wait": 0}),
    _record(3, {"source_queueing": 5, "channel_traversal": 12, "reservation_wait": 4}),
]


def test_summary_mean_components_sum_to_mean_latency():
    summary = AttributionSummary.from_records(RECORDS, label="FR6")
    total = sum(summary.components[name].mean for name in COMPONENTS)
    assert total == pytest.approx(summary.mean_latency)
    assert summary.packets == 3
    assert summary.model == "fr"
    assert summary.mean_latency == pytest.approx((14 + 14 + 21) / 3)


def test_summary_shares_sum_to_one():
    summary = AttributionSummary.from_records(RECORDS)
    assert sum(stats.share for stats in summary.components.values()) == pytest.approx(
        1.0
    )


def test_summary_percentiles_and_max():
    summary = AttributionSummary.from_records(RECORDS)
    queueing = summary.components["source_queueing"]
    assert queueing.p50 == 5.0
    assert queueing.maximum == 6
    assert summary.components["turnaround_stall"].maximum == 0


def test_summary_rejects_empty():
    with pytest.raises(ValueError, match="no attribution records"):
        AttributionSummary.from_records([], label="empty")


def test_mixed_models_labeled_mixed():
    records = [RECORDS[0], _record(9, {"source_queueing": 3}, model="vc")]
    assert AttributionSummary.from_records(records).model == "mixed"


def test_table_side_by_side():
    fr = AttributionSummary.from_records(RECORDS, label="FR6 load=0.30")
    vc = AttributionSummary.from_records(
        [_record(7, {"source_queueing": 4, "turnaround_stall": 6}, model="vc")],
        label="VC8 load=0.30",
    )
    table = format_attribution_table([fr, vc])
    lines = table.splitlines()
    assert "FR6 load=0.30" in lines[0] and "VC8 load=0.30" in lines[0]
    assert len(lines) == 2 + len(COMPONENTS) + 1  # header, rule, rows, total
    for name in COMPONENTS:
        assert any(line.startswith(name) for line in lines)
    assert lines[-1].startswith("total")


def test_json_round_trip_validates(tmp_path):
    summary = AttributionSummary.from_records(RECORDS, label="FR6")
    path = tmp_path / "attribution.json"
    written = write_attribution_json([summary], path, context={"seed": 1})
    loaded = json.loads(path.read_text())
    assert loaded == written
    assert loaded["schema"] == ATTRIBUTION_SCHEMA
    assert loaded["context"] == {"seed": 1}
    validate_attribution(loaded)


def test_validate_rejects_wrong_schema():
    payload = build_attribution_report([AttributionSummary.from_records(RECORDS)])
    payload["schema"] = "frfc-attribution/0"
    with pytest.raises(ValueError, match="schema"):
        validate_attribution(payload)


def test_validate_rejects_broken_conservation():
    payload = build_attribution_report([AttributionSummary.from_records(RECORDS)])
    payload["summaries"][0]["components"]["ejection"]["mean"] += 1.0
    with pytest.raises(ValueError, match="sum"):
        validate_attribution(payload)


def test_validate_rejects_missing_component():
    payload = build_attribution_report([AttributionSummary.from_records(RECORDS)])
    del payload["summaries"][0]["components"]["ejection"]
    with pytest.raises(ValueError, match="missing components"):
        validate_attribution(payload)


def test_validate_rejects_empty_summaries():
    with pytest.raises(ValueError, match="no summaries"):
        validate_attribution(
            {"schema": ATTRIBUTION_SCHEMA, "component_order": list(COMPONENTS),
             "summaries": []}
        )


def test_waterfall_records_nest_inside_packet_spans():
    spans = list(iter_waterfall_records(RECORDS))
    # One b/e pair per (nonzero) segment, same async track as the packet.
    assert len(spans) == 2 * sum(len(record.segments) for record in RECORDS)
    for begin, end in zip(spans[::2], spans[1::2]):
        assert begin["ph"] == "b" and end["ph"] == "e"
        assert begin["cat"] == end["cat"] == "packet"
        assert begin["id"] == end["id"]
        assert begin["name"] in COMPONENTS
        assert end["ts"] > begin["ts"]
