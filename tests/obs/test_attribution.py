"""The latency attributor: conservation, component semantics, lifecycle.

The headline pin is the paper's mechanism claim: at low load a
flit-reservation run attributes **zero** cycles to routing/arbitration and
buffer turnaround -- FR's data path simply has no such stages -- while the
same-seed VC run shows both nonzero, and the wormhole run (a single-VC
special case) shows the same shape.  Every decomposition must sum exactly
to the measured latency; there is no "other" bucket to hide a bookkeeping
error in.
"""

from __future__ import annotations

import pytest

from repro.baselines.vc.config import VCConfig
from repro.baselines.vc.network import VCNetwork
from repro.baselines.wormhole.network import WormholeConfig, WormholeNetwork
from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.obs.attribution import (
    COMPONENTS,
    AttributionError,
    LatencyAttributor,
    PacketAttribution,
    Segment,
)
from repro.obs.events import EventBus
from repro.obs.probe import NetworkProbe
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D

CYCLES = 600


def _fr_network(seed: int = 11, rate: float = 0.05) -> FRNetwork:
    return FRNetwork(
        FRConfig(data_buffers_per_input=6),
        mesh=Mesh2D(4, 4),
        injection_rate=rate,
        seed=seed,
    )


def _vc_network(seed: int = 11, rate: float = 0.05) -> VCNetwork:
    return VCNetwork(
        VCConfig(num_vcs=2, buffers_per_vc=4),
        mesh=Mesh2D(4, 4),
        injection_rate=rate,
        seed=seed,
    )


def _wh_network(seed: int = 11, rate: float = 0.05) -> WormholeNetwork:
    return WormholeNetwork(
        WormholeConfig(buffers_per_input=8),
        mesh=Mesh2D(4, 4),
        injection_rate=rate,
        seed=seed,
    )


BUILDERS = [
    pytest.param(_fr_network, id="fr"),
    pytest.param(_vc_network, id="vc"),
    pytest.param(_wh_network, id="wormhole"),
]


def _attribute(network, cycles: int = CYCLES) -> LatencyAttributor:
    bus = EventBus()
    attributor = LatencyAttributor(bus).configure_for(network)
    probe = NetworkProbe(bus).attach(network)
    Simulator(network).step(cycles)
    probe.detach()
    return attributor


@pytest.mark.parametrize("build", BUILDERS)
def test_every_packet_fully_attributed(build):
    """Probe attached from cycle 0: no packet may fail reconstruction."""
    attributor = _attribute(build())
    assert attributor.records, "no packets delivered in the test run"
    assert attributor.unattributed == 0, attributor.last_failure
    assert attributor.records_dropped == 0


@pytest.mark.parametrize("build", BUILDERS)
def test_components_sum_exactly_to_latency(build):
    for record in _attribute(build()).records:
        assert sum(record.components.values()) == record.latency
        assert set(record.components) == set(COMPONENTS)
        assert all(value >= 0 for value in record.components.values())


@pytest.mark.parametrize("build", BUILDERS)
def test_latency_matches_network_measurement(build):
    """The attributor's latency is delivery - creation, same as the model's."""
    network = build()
    network.set_measure_window(0, CYCLES)
    attributor = _attribute(network)
    measured = sorted(network.latency_stats.samples())
    attributed = sorted(record.latency for record in attributor.records)
    # Every measured packet is also attributed (the window covers the run;
    # packets still in flight at the end appear in neither list).
    assert measured == attributed[: len(measured)] or measured == attributed


def test_fr_attributes_zero_turnaround_and_arbitration():
    """The tentpole mechanism pin, FR side: no routing/arbitration stage and
    no credit turnaround exist on FR's data path, so at low load those
    components are exactly zero for every packet."""
    attributor = _attribute(_fr_network())
    assert attributor.records
    for record in attributor.records:
        assert record.model == "fr"
        assert record.components["routing_arbitration"] == 0
        assert record.components["turnaround_stall"] == 0


def test_vc_same_seed_shows_nonzero_turnaround():
    """The mechanism pin, VC side: the same-seed VC run pays for switch
    arbitration on every hop and stalls on the credit loop (5-flit packets
    against 4 credits per VC force a turnaround wait even at low load)."""
    attributor = _attribute(_vc_network())
    assert attributor.records
    assert all(record.model == "vc" for record in attributor.records)
    total_arbitration = sum(
        record.components["routing_arbitration"] for record in attributor.records
    )
    total_turnaround = sum(
        record.components["turnaround_stall"] for record in attributor.records
    )
    assert total_arbitration > 0
    assert total_turnaround > 0
    assert all(
        record.components["reservation_wait"] == 0 for record in attributor.records
    )


def test_wormhole_matches_vc_shape():
    attributor = _attribute(_wh_network())
    assert attributor.records
    for record in attributor.records:
        assert record.model == "vc"
        assert record.components["reservation_wait"] == 0


@pytest.mark.parametrize("build", BUILDERS)
def test_segments_tile_the_packet_lifetime(build):
    """Segments are the same decomposition as absolute intervals: in order,
    non-overlapping, covering creation to delivery exactly (zero-length
    components omitted)."""
    for record in _attribute(build()).records:
        assert sum(segment.cycles for segment in record.segments) == record.latency
        cursor = record.created_cycle
        for segment in record.segments:
            assert segment.start == cursor
            assert segment.end > segment.start
            assert segment.component in COMPONENTS
            cursor = segment.end
        if record.segments:
            assert record.segments[-1].end == record.delivered_cycle


def test_midrun_attach_counts_unattributed_not_garbage():
    """Packets created before the attributor attached cannot be
    reconstructed; they must land in `unattributed`, never in `records`."""
    network = _fr_network()
    simulator = Simulator(network)
    simulator.step(200)  # packets in flight, unobserved
    bus = EventBus()
    attributor = LatencyAttributor(bus).configure_for(network)
    probe = NetworkProbe(bus).attach(network)
    simulator.step(200)
    probe.detach()
    assert attributor.unattributed > 0
    for record in attributor.records:
        assert sum(record.components.values()) == record.latency


def test_note_window_marks_measured_records():
    network = _fr_network()
    bus = EventBus()
    attributor = LatencyAttributor(bus).configure_for(network)
    attributor.note_window(200, 400)
    probe = NetworkProbe(bus).attach(network)
    Simulator(network).step(CYCLES)
    probe.detach()
    measured = attributor.measured_records()
    assert measured
    assert len(measured) < len(attributor.records)
    for record in measured:
        assert record.measured
        assert 200 <= record.created_cycle < 400


def test_capacity_bounds_records_and_counts_drops():
    network = _fr_network()
    bus = EventBus()
    attributor = LatencyAttributor(bus, capacity=5).configure_for(network)
    probe = NetworkProbe(bus).attach(network)
    Simulator(network).step(CYCLES)
    probe.detach()
    assert len(attributor.records) == 5
    assert attributor.records_dropped > 0


def test_configure_for_reads_link_delay():
    network = _fr_network()
    attributor = LatencyAttributor().configure_for(network)
    assert attributor.data_link_delay == network.config.data_link_delay


def test_invalid_component_sum_rejected():
    with pytest.raises(AttributionError, match="sum"):
        PacketAttribution(
            packet_id=1,
            source=0,
            destination=5,
            created_cycle=0,
            delivered_cycle=10,
            model="fr",
            critical_flit=0,
            hops=1,
            denies=0,
            measured=False,
            components={name: 0 for name in COMPONENTS},
            segments=(),
        )


def test_negative_component_rejected():
    components = dict.fromkeys(COMPONENTS, 0)
    components["source_queueing"] = 12
    components["ejection"] = -2
    with pytest.raises(AttributionError, match="negative"):
        PacketAttribution(
            packet_id=1,
            source=0,
            destination=5,
            created_cycle=0,
            delivered_cycle=10,
            model="fr",
            critical_flit=0,
            hops=1,
            denies=0,
            measured=False,
            components=components,
            segments=(),
        )


def test_segment_cycles():
    segment = Segment(component="ejection", start=4, end=9, node=3)
    assert segment.cycles == 5
