"""Unit tests for the typed event bus and the bounded collector."""

from __future__ import annotations

import pytest

from repro.obs.events import (
    CONTROL_ARRIVAL,
    DATA_ARRIVAL,
    DATA_EJECT,
    EVENT_KINDS,
    EventBus,
    EventCollector,
    NetworkEvent,
)


def _event(kind: str = DATA_ARRIVAL, cycle: int = 7, node: int = 3) -> NetworkEvent:
    return NetworkEvent(cycle=cycle, kind=kind, node=node)


class TestNetworkEvent:
    def test_as_dict_omits_default_fields(self) -> None:
        record = _event().as_dict()
        assert record == {"cycle": 7, "kind": DATA_ARRIVAL, "node": 3}

    def test_as_dict_keeps_non_default_fields(self) -> None:
        event = NetworkEvent(
            cycle=1, kind=CONTROL_ARRIVAL, node=0, packet_id=9, vc=2, detail="head"
        )
        record = event.as_dict()
        assert record["packet_id"] == 9
        assert record["vc"] == 2
        assert record["detail"] == "head"
        assert "port" not in record
        assert "flit_index" not in record

    def test_events_are_immutable(self) -> None:
        with pytest.raises(AttributeError):
            _event().cycle = 0  # type: ignore[misc]


class TestEventBus:
    def test_subscribe_rejects_unknown_kind(self) -> None:
        with pytest.raises(ValueError, match="unknown event kind"):
            EventBus().subscribe("not_a_kind", lambda event: None)

    def test_wants_reflects_subscriptions(self) -> None:
        bus = EventBus()
        assert not bus.wants(DATA_ARRIVAL)
        bus.subscribe(DATA_ARRIVAL, lambda event: None)
        assert bus.wants(DATA_ARRIVAL)
        assert not bus.wants(DATA_EJECT)

    def test_subscribe_all_wants_everything(self) -> None:
        bus = EventBus()
        bus.subscribe_all(lambda event: None)
        for kind in EVENT_KINDS:
            assert bus.wants(kind)

    def test_emit_fans_out_and_counts(self) -> None:
        bus = EventBus()
        by_kind: list[NetworkEvent] = []
        everything: list[NetworkEvent] = []
        bus.subscribe(DATA_ARRIVAL, by_kind.append)
        bus.subscribe_all(everything.append)
        bus.emit(_event(DATA_ARRIVAL))
        bus.emit(_event(DATA_EJECT))
        assert [event.kind for event in by_kind] == [DATA_ARRIVAL]
        assert [event.kind for event in everything] == [DATA_ARRIVAL, DATA_EJECT]
        assert bus.events_emitted == 2


class TestEventCollector:
    def test_collects_in_order(self) -> None:
        collector = EventCollector()
        collector(_event(cycle=1))
        collector(_event(cycle=2))
        assert [event.cycle for event in collector] == [1, 2]
        assert len(collector) == 2
        assert collector.dropped == 0

    def test_capacity_drops_oldest_and_reports(self) -> None:
        collector = EventCollector(capacity=3)
        for cycle in range(5):
            collector(_event(cycle=cycle))
        assert [event.cycle for event in collector] == [2, 3, 4]
        assert collector.total_seen == 5
        assert collector.dropped == 2

    def test_rejects_nonpositive_capacity(self) -> None:
        with pytest.raises(ValueError):
            EventCollector(capacity=0)
