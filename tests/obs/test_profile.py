"""Simulator self-profiling: phase accounting and kernel integration."""

from __future__ import annotations

from repro.core.network import FRNetwork
from repro.obs.profile import SimProfiler
from repro.sim.kernel import Simulator


class TestSimProfiler:
    def test_batches_accumulate_into_phases(self) -> None:
        profiler = SimProfiler()
        profiler.enter_phase("warmup")
        profiler.begin()
        profiler.end(100)
        profiler.enter_phase("sample")
        profiler.begin()
        profiler.end(250)
        assert profiler.total_cycles == 350
        assert profiler.phase_cycles == {"warmup": 100, "sample": 250}
        assert set(profiler.phase_wall) == {"warmup", "sample"}
        assert profiler.total_wall >= 0.0

    def test_end_without_begin_is_a_noop(self) -> None:
        profiler = SimProfiler()
        profiler.end(500)
        assert profiler.total_cycles == 0
        assert profiler.cycles_per_second == 0.0

    def test_report_shape(self) -> None:
        profiler = SimProfiler()
        profiler.begin()
        profiler.end(10)
        report = profiler.report()
        assert report["schema"] == "frfc-obs-bench/1"
        assert report["cycles"] == 10
        assert set(report["phases"]) == {"run"}
        assert set(report["phases"]["run"]) == {
            "cycles",
            "wall_seconds",
            "cycles_per_second",
        }


class TestKernelIntegration:
    def test_simulator_drives_the_profiler(self, mesh4, small_fr_config) -> None:
        network = FRNetwork(small_fr_config, mesh=mesh4, injection_rate=0.02, seed=1)
        profiler = SimProfiler()
        simulator = Simulator(network, profiler=profiler)
        simulator.step(40)
        profiler.enter_phase("second")
        simulator.step(60)
        assert profiler.total_cycles == 100
        assert profiler.phase_cycles == {"run": 40, "second": 60}
        assert profiler.cycles_per_second > 0

    def test_no_profiler_no_accounting(self, mesh4, small_fr_config) -> None:
        network = FRNetwork(small_fr_config, mesh=mesh4, injection_rate=0.02, seed=1)
        simulator = Simulator(network)
        simulator.step(10)
        assert simulator.cycle == 10
