"""The benchmark-trajectory gate: record/check semantics.

The real workloads take seconds, so these tests stub ``run_benchmark``
with synthetic profiler reports and exercise the gate logic: baseline
writing, per-model baseline writing, trajectory appending, ratio math,
and the loud failure modes (regression, schema drift, workload drift).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture()
def gate():
    """Import tools/bench_gate.py by file path (tools/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "bench_gate_cli", REPO / "tools" / "bench_gate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _report(cps: float, cycles: int = 1844, workload: dict | None = None) -> dict:
    wall = cycles / cps
    return {
        "schema": "frfc-obs-bench/1",
        "cycles": cycles,
        "wall_seconds": round(wall, 6),
        "cycles_per_second": cps,
        "phases": {
            "warmup": {"cycles": cycles // 2, "wall_seconds": wall / 2,
                       "cycles_per_second": cps},
            "sample": {"cycles": cycles // 2, "wall_seconds": wall / 2,
                       "cycles_per_second": cps},
        },
        "workload": dict(workload) if workload is not None else {
            "config": "FR6", "offered_load": 0.5, "preset": "quick", "seed": 1,
        },
        "packets_measured": 3777,
    }


def _paths(gate, tmp_path, monkeypatch, cps: float):
    monkeypatch.setattr(
        gate, "run_benchmark", lambda workload=None: _report(cps, workload=workload)
    )
    monkeypatch.setattr(gate, "git_sha", lambda: "f" * 40)
    return [
        "--baseline", str(tmp_path / "BENCH_5.json"),
        "--models-baseline", str(tmp_path / "BENCH_models.json"),
        "--trajectory", str(tmp_path / "BENCH_trajectory.jsonl"),
        "--ledger", str(tmp_path / "runs"),
    ]


def test_record_writes_baseline_and_appends_trajectory(gate, tmp_path, monkeypatch, capsys):
    flags = _paths(gate, tmp_path, monkeypatch, cps=250.0)
    assert gate.main(flags + ["record"]) == 0
    assert gate.main(flags + ["record"]) == 0
    baseline = json.loads((tmp_path / "BENCH_5.json").read_text())
    assert baseline["schema"] == gate.BASELINE_SCHEMA
    assert baseline["bench"]["cycles_per_second"] == 250.0
    assert baseline["git_sha"] == "f" * 40
    lines = (tmp_path / "BENCH_trajectory.jsonl").read_text().splitlines()
    # One primary point plus one per model, per record; appends, never rewrites.
    per_record = 1 + len(gate.MODEL_WORKLOADS)
    assert len(lines) == 2 * per_record
    entry = json.loads(lines[-per_record])
    assert entry["cycles_per_second"] == 250.0
    assert "phase_cycles_per_second" in entry
    assert "model" not in entry  # the primary point carries no model tag
    tagged = [json.loads(line) for line in lines if "model" in json.loads(line)]
    assert {e["model"] for e in tagged} == set(gate.MODEL_WORKLOADS)


def test_record_drops_bench_records_into_the_ledger(gate, tmp_path, monkeypatch, capsys):
    from repro.obs.ledger import RunLedger

    flags = _paths(gate, tmp_path, monkeypatch, cps=250.0)
    assert gate.main(flags + ["record"]) == 0
    ledger = RunLedger(tmp_path / "runs")
    records, corrupt = ledger.scan()
    assert not corrupt
    assert len(records) == 1 + len(gate.MODEL_WORKLOADS)
    assert {r["kind"] for r in records} == {"bench"}
    labels = {r["identity"]["workload"]["label"] for r in records}
    assert labels == {"FR6"} | set(gate.MODEL_WORKLOADS)
    for record in records:
        # Deterministic outputs in the result block, wall clock in profile.
        assert set(record["result"]) == {"cycles", "packets_measured"}
        assert record["profile"]["cycles_per_second"] == 250.0
        ledger.verify(record, record["identity_hash"], "test")


def test_record_no_ledger_skips_recording(gate, tmp_path, monkeypatch, capsys):
    flags = _paths(gate, tmp_path, monkeypatch, cps=250.0)
    assert gate.main(flags + ["--no-ledger", "record"]) == 0
    assert not (tmp_path / "runs").exists()


def test_record_writes_models_baseline(gate, tmp_path, monkeypatch, capsys):
    flags = _paths(gate, tmp_path, monkeypatch, cps=250.0)
    assert gate.main(flags + ["record"]) == 0
    models = json.loads((tmp_path / "BENCH_models.json").read_text())
    assert models["schema"] == gate.MODELS_SCHEMA
    assert set(models["models"]) == set(gate.MODEL_WORKLOADS)
    for name, entry in models["models"].items():
        assert entry["workload"] == gate.MODEL_WORKLOADS[name]
        assert entry["bench"]["cycles_per_second"] == 250.0


def test_check_passes_within_tolerance(gate, tmp_path, monkeypatch, capsys):
    assert gate.main(_paths(gate, tmp_path, monkeypatch, 250.0) + ["record"]) == 0
    flags = _paths(gate, tmp_path, monkeypatch, 200.0)  # 0.8 ratio
    assert gate.main(flags + ["check"]) == 0
    assert "OK" in capsys.readouterr().out


def test_check_models_gates_every_model(gate, tmp_path, monkeypatch, capsys):
    assert gate.main(_paths(gate, tmp_path, monkeypatch, 250.0) + ["record"]) == 0
    flags = _paths(gate, tmp_path, monkeypatch, 200.0)  # 0.8 ratio everywhere
    assert gate.main(flags + ["check", "--models"]) == 0
    out = capsys.readouterr().out
    for model in gate.MODEL_WORKLOADS:
        assert model in out
    flags = _paths(gate, tmp_path, monkeypatch, 150.0)  # 0.6 ratio everywhere
    assert gate.main(flags + ["check", "--models"]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_check_models_without_models_baseline_fails(gate, tmp_path, monkeypatch, capsys):
    assert gate.main(_paths(gate, tmp_path, monkeypatch, 250.0) + ["record"]) == 0
    (tmp_path / "BENCH_models.json").unlink()
    flags = _paths(gate, tmp_path, monkeypatch, 250.0)
    assert gate.main(flags + ["check", "--models"]) == 1
    assert "no models baseline" in capsys.readouterr().out


def test_check_fails_loudly_past_30_percent_regression(gate, tmp_path, monkeypatch, capsys):
    assert gate.main(_paths(gate, tmp_path, monkeypatch, 250.0) + ["record"]) == 0
    flags = _paths(gate, tmp_path, monkeypatch, 150.0)  # 0.6 ratio
    assert gate.main(flags + ["check"]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_check_custom_ratio(gate, tmp_path, monkeypatch):
    assert gate.main(_paths(gate, tmp_path, monkeypatch, 250.0) + ["record"]) == 0
    flags = _paths(gate, tmp_path, monkeypatch, 100.0)  # 0.4 ratio
    assert gate.main(flags + ["check", "--min-ratio", "0.3"]) == 0
    assert gate.main(flags + ["check", "--min-ratio", "0.5"]) == 1


def test_check_without_baseline_fails(gate, tmp_path, monkeypatch, capsys):
    flags = _paths(gate, tmp_path, monkeypatch, 250.0)
    assert gate.main(flags + ["check"]) == 1
    assert "no baseline" in capsys.readouterr().out


def test_check_rejects_cycle_count_drift(gate, tmp_path, monkeypatch, capsys):
    """Same speed but a different simulated cycle count means the workload
    itself changed; the gate demands a fresh baseline instead of comparing
    incomparable runs."""
    assert gate.main(_paths(gate, tmp_path, monkeypatch, 250.0) + ["record"]) == 0
    flags = _paths(gate, tmp_path, monkeypatch, 250.0)
    monkeypatch.setattr(
        gate, "run_benchmark",
        lambda workload=None: _report(250.0, cycles=9999, workload=workload),
    )
    assert gate.main(flags + ["check"]) == 1
    assert "re-record" in capsys.readouterr().out


def test_committed_baseline_matches_tool_workload(gate):
    """The checked-in BENCH_5.json must describe the workload the tool runs
    (otherwise CI compares apples to oranges)."""
    baseline = json.loads((REPO / "benchmarks" / "results" / "BENCH_5.json").read_text())
    assert baseline["schema"] == gate.BASELINE_SCHEMA
    assert baseline["workload"] == gate.WORKLOAD
    assert baseline["bench"]["cycles_per_second"] > 0
    trajectory = (REPO / "benchmarks" / "results" / "BENCH_trajectory.jsonl").read_text()
    assert trajectory.strip(), "trajectory must carry at least the first point"
    for line in trajectory.splitlines():
        json.loads(line)


def test_committed_models_baseline_matches_tool_workloads(gate):
    """Same apples-to-apples contract for the per-model baselines."""
    models = json.loads(
        (REPO / "benchmarks" / "results" / "BENCH_models.json").read_text()
    )
    assert models["schema"] == gate.MODELS_SCHEMA
    assert set(models["models"]) == set(gate.MODEL_WORKLOADS)
    for name, entry in models["models"].items():
        assert entry["workload"] == gate.MODEL_WORKLOADS[name]
        assert entry["bench"]["cycles_per_second"] > 0
