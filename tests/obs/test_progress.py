"""The progress reporter: heartbeat cadence, bracketing, JSONL stream."""

from __future__ import annotations

import io
import json

from repro.obs.progress import PROGRESS_SCHEMA, ProgressReporter


class _FrozenNetwork:
    """Raises on any attribute access: the hook must never touch it."""

    def __getattr__(self, name):
        raise AssertionError(f"ProgressReporter touched network.{name}")


def _events(path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines()]


def test_heartbeat_every_n_cycles_and_never_touches_network(tmp_path):
    out = tmp_path / "progress.jsonl"
    stream = io.StringIO()
    reporter = ProgressReporter(
        jsonl_out=str(out), stream=stream, heartbeat_cycles=10, label="T"
    )
    reporter.begin_point(index=1, total=3, label="load=0.20")
    reporter.enter_phase("warmup")
    network = _FrozenNetwork()
    for cycle in range(25):
        reporter.check(network, cycle)
    events = _events(out)
    beats = [e for e in events if e["event"] == "heartbeat"]
    assert len(beats) == 2  # cycles 10 and 20
    assert all(e["schema"] == PROGRESS_SCHEMA for e in events)
    assert beats[0]["phase"] == "warmup"
    assert beats[0]["point_cycles"] == 10
    assert beats[1]["point_cycles"] == 20
    assert "cycles_per_second" in beats[0]
    human = stream.getvalue()
    assert "[frfc] T point 1/3 load=0.20" in human
    assert "phase=warmup" in human


def test_bracketing_counts_hits_and_simulated(tmp_path):
    out = tmp_path / "progress.jsonl"
    reporter = ProgressReporter(jsonl_out=str(out), stream=io.StringIO())
    reporter.begin_point(1, 2, "load=0.20")
    reporter.end_point(cache_hit=False, summary="fresh")
    reporter.begin_point(2, 2, "load=0.30")
    reporter.end_point(cache_hit=True, summary="replayed")
    reporter.close("2 points")
    assert (reporter.points_simulated, reporter.points_hit) == (1, 1)
    events = _events(out)
    ends = [e for e in events if e["event"] == "end_point"]
    assert [e["cache_hit"] for e in ends] == [False, True]
    assert all("wall_seconds" in e for e in ends)
    assert events[-1] == {**events[-1], "event": "done", "summary": "2 points"}


def test_eta_extrapolates_from_completed_simulated_points():
    reporter = ProgressReporter(stream=io.StringIO())
    reporter.begin_point(1, 4, "a")
    assert reporter._eta_seconds() is None  # nothing completed yet
    reporter._completed_walls.append(2.0)
    reporter.point_index = 2
    eta = reporter._eta_seconds()
    assert eta is not None
    # Two points remain at ~2s each, plus the remainder of the current one.
    assert 4.0 <= eta <= 6.1


def test_jsonl_stream_appends_across_reporters(tmp_path):
    """A resumed sweep extends progress.jsonl rather than truncating it."""
    out = tmp_path / "progress.jsonl"
    first = ProgressReporter(jsonl_out=str(out), stream=io.StringIO())
    first.begin_point(1, 2, "load=0.20")
    first.end_point(cache_hit=False)
    second = ProgressReporter(jsonl_out=str(out), stream=io.StringIO())
    second.begin_point(2, 2, "load=0.30")
    second.end_point(cache_hit=True)
    events = _events(out)
    assert [e["event"] for e in events] == [
        "begin_point", "end_point", "begin_point", "end_point",
    ]


def test_no_jsonl_out_means_stderr_only(tmp_path, monkeypatch):
    stream = io.StringIO()
    reporter = ProgressReporter(stream=stream)
    reporter.begin_point(1, 1, "load=0.50")
    reporter.end_point(cache_hit=False, summary="ok")
    assert "simulated" in stream.getvalue()
    assert not list(tmp_path.iterdir())
