"""Exporter tests: golden fixtures, schema checks, byte-identity.

The golden fixtures in ``tests/obs/fixtures/`` come from a seeded 4x4
quick run (the recipe in ``_observed_run`` below).  Regenerate them with
``FRFC_REGEN_GOLDEN=1 pytest tests/obs/test_exporters.py`` after an
*intentional* format change.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

import pytest

from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.obs.events import EVENT_KINDS, EventBus, EventCollector, NetworkEvent
from repro.obs.exporters import write_chrome_trace, write_events_jsonl, write_metrics_csv
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import NetworkProbe
from repro.sim.kernel import Simulator
from repro.topology.mesh import Mesh2D

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN_JSONL = FIXTURES / "events.golden.jsonl"
GOLDEN_TRACE = FIXTURES / "trace.golden.json"
GOLDEN_CSV = FIXTURES / "metrics.golden.csv"

SEED = 7
RATE = 0.01
CYCLES = 120


def _observed_run() -> tuple[EventCollector, MetricsRegistry]:
    """The fixture recipe: FR(6) on a 4x4 mesh, rate 0.01, seed 7, 120 cycles."""
    network = FRNetwork(
        FRConfig(data_buffers_per_input=6),
        mesh=Mesh2D(4, 4),
        injection_rate=RATE,
        seed=SEED,
    )
    bus = EventBus()
    collector = EventCollector()
    bus.subscribe_all(collector)
    registry = MetricsRegistry(sample_every=30)
    registry.install_standard_instruments(network)
    probe = NetworkProbe(bus).attach(network)
    Simulator(network, observers=(registry,)).step(CYCLES)
    probe.detach()
    return collector, registry


@pytest.fixture(scope="module")
def observed():
    return _observed_run()


def _check_golden(golden: Path, produced: str) -> None:
    if os.environ.get("FRFC_REGEN_GOLDEN"):
        golden.write_text(produced, encoding="utf-8")
        pytest.skip(f"regenerated {golden.name}")
    assert golden.read_text(encoding="utf-8") == produced, (
        f"{golden.name} drifted; regenerate with FRFC_REGEN_GOLDEN=1 "
        "only if the format change is intentional"
    )


class TestGoldenFixtures:
    def test_jsonl_matches_golden(self, observed, tmp_path) -> None:
        collector, _ = observed
        out = tmp_path / "events.jsonl"
        count = write_events_jsonl(collector, out)
        assert count == len(collector)
        _check_golden(GOLDEN_JSONL, out.read_text(encoding="utf-8"))

    def test_chrome_trace_matches_golden(self, observed, tmp_path) -> None:
        collector, _ = observed
        out = tmp_path / "trace.json"
        write_chrome_trace(collector, out, run_name="frfc FR6-golden")
        _check_golden(GOLDEN_TRACE, out.read_text(encoding="utf-8"))

    def test_csv_matches_golden(self, observed, tmp_path) -> None:
        _, registry = observed
        out = tmp_path / "metrics.csv"
        count = write_metrics_csv(registry.timeseries, out)
        assert count == len(registry.timeseries)
        _check_golden(GOLDEN_CSV, out.read_text(encoding="utf-8"))

    def test_same_seed_same_bytes(self, observed, tmp_path) -> None:
        """The determinism acceptance criterion, in miniature."""
        collector_a, registry_a = observed
        collector_b, registry_b = _observed_run()
        for name, write, first, second in (
            ("events.jsonl", write_events_jsonl, collector_a, collector_b),
            ("metrics.csv", write_metrics_csv, registry_a.timeseries, registry_b.timeseries),
        ):
            path_a = tmp_path / f"a_{name}"
            path_b = tmp_path / f"b_{name}"
            write(first, path_a)
            write(second, path_b)
            assert path_a.read_bytes() == path_b.read_bytes(), name


class TestJsonlSchema:
    def test_every_line_parses_with_required_keys(self, observed, tmp_path) -> None:
        collector, _ = observed
        out = tmp_path / "events.jsonl"
        write_events_jsonl(collector, out)
        lines = out.read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(collector) > 0
        for line in lines:
            record = json.loads(line)
            assert {"cycle", "kind", "node"} <= set(record)
            assert record["kind"] in EVENT_KINDS


class TestChromeTraceSchema:
    def test_trace_structure(self, observed, tmp_path) -> None:
        collector, _ = observed
        out = tmp_path / "trace.json"
        count = write_chrome_trace(collector, out)
        payload = json.loads(out.read_text(encoding="utf-8"))
        records = payload["traceEvents"]
        assert len(records) == count
        phases = {record["ph"] for record in records}
        assert phases <= {"M", "i", "b", "e"}
        assert records[0] == {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "frfc"},
        }
        for record in records:
            assert record["pid"] == 0
            assert "tid" in record
            if record["ph"] != "M":
                assert record["ts"] >= 0

    def test_packet_spans_pair_up(self, observed, tmp_path) -> None:
        collector, _ = observed
        out = tmp_path / "trace.json"
        write_chrome_trace(collector, out)
        records = json.loads(out.read_text(encoding="utf-8"))["traceEvents"]
        begins = {r["id"]: r for r in records if r["ph"] == "b"}
        ends = {r["id"]: r for r in records if r["ph"] == "e"}
        assert begins
        for packet_id, end in ends.items():
            begin = begins[packet_id]
            assert begin["tid"] == end["tid"], "span must stay on its start thread"
            assert begin["ts"] <= end["ts"]


class TestCsv:
    def test_header_and_integer_formatting(self, tmp_path) -> None:
        rows = [
            {"cycle": 0.0, "x": 1.0, "y": 0.5},
            {"cycle": 100.0, "x": 2.0, "y": 1.25},
        ]
        out = tmp_path / "m.csv"
        assert write_metrics_csv(rows, out) == 2
        text = out.read_text(encoding="utf-8")
        assert text.splitlines()[0] == "cycle,x,y"
        assert text.splitlines()[1] == "0,1,0.500000"

    def test_empty_timeseries_still_has_header(self, tmp_path) -> None:
        out = tmp_path / "empty.csv"
        assert write_metrics_csv([], out) == 0
        assert out.read_text(encoding="utf-8") == "cycle\n"

    def test_csv_parses_back(self, observed, tmp_path) -> None:
        _, registry = observed
        out = tmp_path / "metrics.csv"
        write_metrics_csv(registry.timeseries, out)
        with open(out, newline="", encoding="utf-8") as handle:
            parsed = list(csv.DictReader(handle))
        assert len(parsed) == len(registry.timeseries)
        assert [float(row["cycle"]) for row in parsed] == [
            row["cycle"] for row in registry.timeseries
        ]


def test_negative_cycle_clamps_to_zero(tmp_path) -> None:
    events = [NetworkEvent(cycle=-1, kind="control_arrival", node=0)]
    out = tmp_path / "t.json"
    write_chrome_trace(events, out)
    records = json.loads(out.read_text(encoding="utf-8"))["traceEvents"]
    instants = [r for r in records if r["ph"] == "i"]
    assert instants[0]["ts"] == 0
