"""The ``frfc-heatmap/1`` exporter: schema, aggregation, hotspots, renderers."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs.heatmap import (
    HEATMAP_SCHEMA,
    HeatmapError,
    assemble_heatmap,
    build_frame,
    build_heatmap,
    format_hotspots,
    render_ascii,
    render_svg,
    validate_heatmap,
    write_heatmap_json,
)
from repro.obs.spatial import LEVEL, RATE, SpatialMetricsRegistry, SpatialSample
from repro.topology.mesh import Mesh2D


def _registry(mesh: Mesh2D, rows: int = 4, sample_every: int = 10):
    """A hand-filled registry: node id as the level, constant 0.5 rate."""
    registry = SpatialMetricsRegistry(sample_every=sample_every)
    registry.node_metrics = {"occ": LEVEL, "stalls": RATE}
    registry.link_metrics = {"util": RATE}
    registry.link_keys = [(0, 1), (1, 3)]
    window_start = 0
    for index in range(rows):
        cycle = index * sample_every
        window_end = cycle + 1
        registry.samples.append(
            SpatialSample(
                cycle=cycle,
                window_start=window_start,
                window_end=window_end,
                nodes={
                    "occ": [float(node + index) for node in range(mesh.num_nodes)],
                    "stalls": [1.0] * mesh.num_nodes,
                },
                links={"util": [0.5, 0.25]},
            )
        )
        window_start = window_end
    return registry


class TestBuild:
    def test_single_frame_payload_validates(self) -> None:
        mesh = Mesh2D(2, 2)
        payload = build_heatmap(_registry(mesh), mesh, label="t")
        validate_heatmap(payload)
        assert payload["schema"] == HEATMAP_SCHEMA
        assert payload["mesh"] == {"width": 2, "height": 2}
        assert len(payload["frames"]) == 1

    def test_level_metrics_aggregate_as_plain_mean(self) -> None:
        mesh = Mesh2D(2, 2)
        payload = build_heatmap(_registry(mesh, rows=4), mesh, label="t")
        # occ at node n in row i is n + i; mean over i in 0..3 is n + 1.5.
        assert payload["frames"][0]["nodes"]["occ"] == [1.5, 2.5, 3.5, 4.5]

    def test_rate_metrics_aggregate_window_weighted(self) -> None:
        mesh = Mesh2D(2, 2)
        registry = _registry(mesh, rows=3, sample_every=10)
        # Windows are [0,1), [1,11), [11,21): lengths 1, 10, 10.  A constant
        # rate must aggregate back to itself under length weighting.
        payload = build_heatmap(registry, mesh, label="t")
        assert payload["frames"][0]["links"]["util"] == [0.5, 0.25]
        assert payload["frames"][0]["nodes"]["stalls"] == [1.0] * 4

    def test_at_selects_the_containing_window(self) -> None:
        mesh = Mesh2D(2, 2)
        frame = build_frame(_registry(mesh), mesh, label="t", at=15)
        # Cycle 15 lives in row 2's window [11, 21): occ is node + 2.
        assert frame["nodes"]["occ"] == [2.0, 3.0, 4.0, 5.0]
        assert frame["window"] == [11, 21]

    def test_window_selects_contained_rows_half_open(self) -> None:
        mesh = Mesh2D(2, 2)
        frame = build_frame(_registry(mesh), mesh, label="t", window=(0, 11))
        # Rows [0,1) and [1,11) fit inside [0,11); row [11,21) does not.
        assert frame["rows"] == 2
        assert frame["nodes"]["occ"] == [0.5, 1.5, 2.5, 3.5]

    def test_empty_selection_raises(self) -> None:
        mesh = Mesh2D(2, 2)
        with pytest.raises(HeatmapError, match="no sampled"):
            build_frame(_registry(mesh), mesh, label="t", at=999)
        with pytest.raises(HeatmapError, match="no sampled"):
            build_frame(_registry(mesh), mesh, label="t", window=(500, 600))

    def test_at_and_window_together_rejected(self) -> None:
        mesh = Mesh2D(2, 2)
        with pytest.raises(HeatmapError, match="not both"):
            build_frame(_registry(mesh), mesh, label="t", at=5, window=(0, 10))

    def test_multi_frame_assembly(self) -> None:
        mesh = Mesh2D(2, 2)
        registry = _registry(mesh)
        frames = [
            build_frame(registry, mesh, label="load=0.10"),
            build_frame(registry, mesh, label="load=0.50"),
        ]
        payload = assemble_heatmap(registry, mesh, frames)
        validate_heatmap(payload)
        assert [frame["label"] for frame in payload["frames"]] == [
            "load=0.10",
            "load=0.50",
        ]


class TestHotspots:
    def test_top_k_sorted_with_shares(self) -> None:
        mesh = Mesh2D(2, 2)
        payload = build_heatmap(_registry(mesh), mesh, label="t", top_k=2)
        spots = payload["frames"][0]["hotspots"]["occ"]["nodes"]
        assert [spot["node"] for spot in spots] == [3, 2]
        total = 1.5 + 2.5 + 3.5 + 4.5
        assert spots[0]["value"] == 4.5
        assert spots[0]["share"] == pytest.approx(4.5 / total)
        assert spots[0]["x"] == 1 and spots[0]["y"] == 1

    def test_link_hotspots_name_ports(self) -> None:
        mesh = Mesh2D(2, 2)
        payload = build_heatmap(_registry(mesh), mesh, label="t")
        spots = payload["frames"][0]["hotspots"]["util"]["links"]
        assert spots[0]["value"] == 0.5
        assert spots[0]["node"] == 0
        assert isinstance(spots[0]["port"], str)

    def test_all_zero_metric_yields_zero_shares(self) -> None:
        mesh = Mesh2D(2, 2)
        registry = _registry(mesh, rows=1)
        registry.samples[0].nodes["occ"] = [0.0, 0.0, 0.0, 0.0]
        payload = build_heatmap(registry, mesh, label="t")
        for spot in payload["frames"][0]["hotspots"]["occ"]["nodes"]:
            assert spot["share"] == 0.0

    def test_format_hotspots_renders_every_entry(self) -> None:
        mesh = Mesh2D(2, 2)
        payload = build_heatmap(_registry(mesh), mesh, label="t", top_k=3)
        text = format_hotspots(payload, "occ")
        assert text.count("node") >= 3
        with pytest.raises(HeatmapError, match="no hotspots"):
            format_hotspots(payload, "nope")


class TestValidation:
    def _payload(self):
        mesh = Mesh2D(2, 2)
        return build_heatmap(_registry(mesh), mesh, label="t")

    def test_rejects_wrong_schema(self) -> None:
        payload = self._payload()
        payload["schema"] = "frfc-heatmap/0"
        with pytest.raises(HeatmapError, match="schema"):
            validate_heatmap(payload)

    def test_rejects_grid_mesh_mismatch(self) -> None:
        payload = self._payload()
        payload["frames"][0]["nodes"]["occ"] = [1.0, 2.0]
        with pytest.raises(HeatmapError, match="cells"):
            validate_heatmap(payload)

    def test_rejects_undeclared_metric(self) -> None:
        payload = self._payload()
        payload["frames"][0]["nodes"]["ghost"] = [0.0, 0.0, 0.0, 0.0]
        with pytest.raises(HeatmapError, match="undeclared"):
            validate_heatmap(payload)

    def test_rejects_negative_and_non_finite_values(self) -> None:
        payload = self._payload()
        broken = copy.deepcopy(payload)
        broken["frames"][0]["nodes"]["occ"][0] = -1.0
        with pytest.raises(HeatmapError, match="negative"):
            validate_heatmap(broken)
        broken = copy.deepcopy(payload)
        broken["frames"][0]["nodes"]["occ"][0] = float("nan")
        with pytest.raises(HeatmapError, match="non-finite"):
            validate_heatmap(broken)

    def test_rejects_inverted_window(self) -> None:
        payload = self._payload()
        payload["frames"][0]["window"] = [20, 10]
        with pytest.raises(HeatmapError, match="half-open"):
            validate_heatmap(payload)

    def test_rejects_empty_frames(self) -> None:
        payload = self._payload()
        payload["frames"] = []
        with pytest.raises(HeatmapError, match="frames"):
            validate_heatmap(payload)

    def test_roundtrips_through_json(self, tmp_path) -> None:
        payload = self._payload()
        path = tmp_path / "hm.json"
        write_heatmap_json(payload, path)
        loaded = json.loads(path.read_text())
        validate_heatmap(loaded)
        assert loaded == payload


class TestRenderers:
    def test_ascii_shows_every_mesh_row(self) -> None:
        mesh = Mesh2D(3, 2)
        registry = _registry(mesh)
        text = render_ascii(build_heatmap(registry, mesh, label="t"), "occ")
        # Header + column ruler + one line per mesh row + scale line.
        assert len(text.splitlines()) == 2 + mesh.height + 1
        assert "occ" in text

    def test_ascii_unknown_metric_raises(self) -> None:
        mesh = Mesh2D(2, 2)
        payload = build_heatmap(_registry(mesh), mesh, label="t")
        with pytest.raises(HeatmapError, match="node metrics"):
            render_ascii(payload, "nope")

    def test_svg_is_self_contained_with_one_rect_per_node(self) -> None:
        mesh = Mesh2D(2, 2)
        payload = build_heatmap(_registry(mesh), mesh, label="t")
        svg = render_svg(payload, "occ")
        assert svg.startswith("<svg ")
        assert svg.rstrip().endswith("</svg>")
        # One background rect plus one per node.
        assert svg.count("<rect ") == 1 + mesh.num_nodes
        assert "http://www.w3.org/2000/svg" in svg

    def test_frame_index_out_of_range(self) -> None:
        mesh = Mesh2D(2, 2)
        payload = build_heatmap(_registry(mesh), mesh, label="t")
        with pytest.raises(HeatmapError, match="frames"):
            render_ascii(payload, "occ", frame=3)
