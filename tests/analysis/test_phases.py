"""Tests for the cycle-phase race detector.

The central claims: all three shipped networks are race-free (their phases
couple only through Link pipelines, owned state, or sanctioned hooks), and
a deliberately racy model -- shared-dict writes, cross-actor mutation,
network-attribute writes inside a phase loop -- is flagged with precise
per-hazard locations.
"""

import ast
import textwrap

import pytest

from repro.analysis.phases import (
    NetworkAnalyzer,
    SingleModuleResolver,
    analyze_known_networks,
    analyze_model,
    analyze_module_source,
)


RACY_SOURCE = textwrap.dedent(
    '''
    class RacyRouter:
        def __init__(self, node, routers, board):
            self.node = node
            self.routers = routers
            self.board = board
            self.queue = []

        def phase(self, cycle):
            self.board[self.node] = cycle
            self.routers[self.node + 1].queue.append(cycle)

    class RacyNetwork:
        def __init__(self, n):
            board = {}
            self.tally = 0
            self.all_routers = []
            self.routers = [RacyRouter(k, self.all_routers, board) for k in range(n)]

        def step(self, cycle):
            for router in self.routers:
                router.phase(cycle)
                self.tally = self.tally + 1
    '''
)


CLEAN_SOURCE = textwrap.dedent(
    '''
    class Link:
        def send(self, flit):
            pass

        def receive(self):
            return None

    class RingRouter:
        def __init__(self, node: int, out_link: Link, in_link: Link):
            self.node = node
            self.out_link = out_link
            self.in_link = in_link
            self.queue = []

        def phase(self, cycle):
            flit = self.in_link.receive()
            if flit is not None:
                self.queue.append(flit)
            if self.queue:
                self.out_link.send(self.queue.pop(0))

    class RingNetwork:
        def __init__(self, n):
            links = [Link() for _ in range(n)]
            self.routers = [RingRouter(k, links[k], links[k - 1]) for k in range(n)]

        def step(self, cycle):
            for router in self.routers:
                router.phase(cycle)
    '''
)


class TestShippedNetworksAreRaceFree:
    @pytest.fixture(scope="class")
    def reports(self):
        return analyze_known_networks()

    def test_all_three_networks_analyzed(self, reports):
        assert [report.network for report in reports] == ["FR", "VC", "WH"]

    def test_zero_hazards(self, reports):
        for report in reports:
            assert report.clean, report.format(verbose=True)

    def test_phases_are_nonvacuous(self, reports):
        """Every network resolves real actor phases with real effect sets."""
        for report in reports:
            actor_phases = [
                phase for phase in report.phases if phase.actor_class != "network"
            ]
            assert len(actor_phases) >= 2, report.format()
            assert any(phase.writes for phase in actor_phases)
            assert any(phase.channel_ops for phase in actor_phases)

    def test_wormhole_resolves_through_vc_base(self, reports):
        """WormholeNetwork inherits step() and its collections from VCNetwork;
        the analysis must follow the MRO rather than report vacuous phases."""
        wormhole = reports[2]
        assert any(
            phase.actor_class == "VCRouter" for phase in wormhole.phases
        ), wormhole.format()


class TestRacyModelIsFlagged:
    @pytest.fixture(scope="class")
    def hazards(self):
        return analyze_module_source(RACY_SOURCE, "racy.py")

    def test_all_three_seeded_races_found(self, hazards):
        assert len(hazards) == 3, "\n".join(h.format() for h in hazards)

    def test_shared_dict_write_flagged(self, hazards):
        assert any("board" in hazard.message for hazard in hazards)

    def test_cross_actor_mutation_flagged(self, hazards):
        assert any(
            "routers" in hazard.message or "queue" in hazard.message
            for hazard in hazards
        )

    def test_network_attribute_write_flagged(self, hazards):
        assert any("tally" in hazard.message for hazard in hazards)

    def test_hazards_carry_locations(self, hazards):
        for hazard in hazards:
            assert hazard.line > 0
            assert hazard.phase
            assert hazard.rule_id == "D007"
            assert hazard.network == "RacyNetwork"


class TestCleanModelPasses:
    def test_link_coupled_ring_has_no_hazards(self):
        assert analyze_module_source(CLEAN_SOURCE, "ring.py") == []

    def test_ring_analysis_is_nonvacuous(self):
        """The clean verdict must come from real analysis: the ring's phases
        resolve to the local actor class and show Link traffic."""
        tree = ast.parse(CLEAN_SOURCE)
        module = "<file:ring.py>"
        resolver = SingleModuleResolver(module, tree)
        info = resolver.resolve_class("RingNetwork", module)
        report = NetworkAnalyzer(info).analyze()
        assert report.clean, report.format(verbose=True)
        assert any(phase.actor_class == "RingRouter" for phase in report.phases)
        assert any(phase.channel_ops for phase in report.phases)


class TestEntryPoints:
    def test_analyze_model_by_name(self):
        report = analyze_model("repro.core.network", "FRNetwork", label="FR")
        assert report.network == "FR"
        assert report.clean

    def test_module_without_networks_yields_nothing(self):
        assert analyze_module_source("x = 1\n", "empty.py") == []

    def test_report_format_is_readable(self):
        report = analyze_model("repro.core.network", "FRNetwork", label="FR")
        text = report.format(verbose=True)
        assert "FR" in text
        assert "phase 1" in text
