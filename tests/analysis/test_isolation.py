"""Tests for the determinism & isolation prover (repro.analysis.isolation)."""

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.isolation import (
    CERT_SCHEMA,
    CERTIFIED,
    ENTRY_POINTS,
    VIOLATED,
    IsolationAnalyzer,
    IsolationError,
    _OriginResolver,
    analyze_entry_points,
    analyze_module_isolation_source,
    build_certificate,
    check_certificate,
    import_closure,
    verify_isolation,
)

REPO = Path(__file__).resolve().parents[2]
BASELINE = REPO / "benchmarks" / "results" / "ISOLATION_baseline.json"
FIXTURE = REPO / "src" / "repro" / "analysis" / "broken_isolation.py"


def _fixture_line(marker: str) -> int:
    """Line number of the first fixture-source line containing ``marker``."""
    for number, line in enumerate(FIXTURE.read_text().splitlines(), start=1):
        if marker in line:
            return number
    raise AssertionError(f"marker {marker!r} not found in {FIXTURE}")


@pytest.fixture(scope="module")
def shipped_reports():
    return analyze_entry_points()


@pytest.fixture(scope="module")
def broken_report():
    analyzer = IsolationAnalyzer()
    return analyzer.analyze_entry(
        "broken", "repro.analysis.broken_isolation", "drive"
    )


class TestImportClosure:
    def test_follows_lazy_function_level_imports(self):
        # sweep imports ObsSession lazily inside a helper; the closure must
        # still include the observability tree.
        resolver = _OriginResolver()
        closure = import_closure("repro.harness.sweep", resolver)
        assert "repro.obs.session" in closure

    def test_skips_type_checking_blocks(self):
        # experiment's only obs reference is under `if TYPE_CHECKING:` --
        # the FR tree must not drag the observability stack in.
        resolver = _OriginResolver()
        closure = import_closure("repro.harness.experiment", resolver)
        assert not any(module.startswith("repro.obs") for module in closure)

    def test_stop_set_prunes_other_models(self):
        resolver = _OriginResolver()
        closure = import_closure(
            "repro.harness.experiment",
            resolver,
            stop=frozenset({"repro.baselines.vc.network", "repro.baselines.vc.config"}),
        )
        assert "repro.baselines.vc.router" not in closure


class TestShippedEntryPointsCertified:
    def test_all_entry_points_analyzed(self, shipped_reports):
        assert [r.name for r in shipped_reports] == [e[0] for e in ENTRY_POINTS]

    @pytest.mark.parametrize("label", ["FR", "VC", "WH"])
    def test_run_experiment_certified(self, shipped_reports, label):
        report = next(r for r in shipped_reports if r.name == f"run_experiment[{label}]")
        assert report.verdict == CERTIFIED
        assert report.findings == ()
        assert report.traced_draws > 0
        assert len(report.modules) > 10

    def test_run_load_sweep_certified(self, shipped_reports):
        report = next(r for r in shipped_reports if r.name == "run_load_sweep")
        assert report.verdict == CERTIFIED
        # The sweep tree includes the observability layer (lazy import).
        assert any(m.startswith("repro.obs") for m in report.modules)

    def test_model_trees_are_model_specific(self, shipped_reports):
        # Each model's tree stops at the *other* models' network/config
        # modules.  (Some FR core machinery is reachable from every tree:
        # sim.invariants lazily imports FRRouter for isinstance dispatch.)
        fr = next(r for r in shipped_reports if r.model == "FR")
        vc = next(r for r in shipped_reports if r.model == "VC")
        assert "repro.core.network" in fr.modules
        assert "repro.baselines.vc.network" not in fr.modules
        assert "repro.baselines.vc.router" not in fr.modules
        assert "repro.baselines.vc.network" in vc.modules
        assert "repro.baselines.vc.router" in vc.modules
        assert "repro.core.network" not in vc.modules

    def test_known_registries_classified_read_only(self, shipped_reports):
        fr = next(r for r in shipped_reports if r.model == "FR")
        assert "repro.harness.presets.PRESETS" in fr.read_only_globals
        assert "repro.traffic.patterns._PATTERNS" in fr.read_only_globals

    def test_unknown_entry_module_raises(self):
        with pytest.raises(IsolationError):
            IsolationAnalyzer().analyze_entry("x", "repro.no_such_module", "run")


class TestBrokenFixtureViolated:
    """Every seeded sin must be reported, at the correct file and line."""

    def test_verdict_violated(self, broken_report):
        assert broken_report.verdict == VIOLATED

    @pytest.mark.parametrize(
        "category, marker",
        [
            ("rng-untraced", "random.randint(0, self.mesh.num_nodes - 2)"),
            ("global-write", "_ROUTE_CACHE[key] = self._compute"),
            ("class-mutable-write", "self.totals[event] = self.totals.get"),
            ("id-keyed", "self._by_identity[id(item)] = item"),
            ("unordered-iteration", "[tag for tag in self._pending]"),
        ],
    )
    def test_each_sin_found_at_its_line(self, broken_report, category, marker):
        expected_line = _fixture_line(marker)
        matches = [
            f
            for f in broken_report.findings
            if f.category == category
            and f.path.endswith("broken_isolation.py")
            and f.line == expected_line
        ]
        assert matches, (
            f"no {category} finding at broken_isolation.py:{expected_line}; "
            f"got {[f.render() for f in broken_report.findings]}"
        )

    def test_lint_suppressions_do_not_hide_sins(self, broken_report):
        # The fixture carries `# frfc-lint: disable=` comments on every sin
        # line (the repo-wide lint gate stays green), yet the whole-program
        # pass still reports all of them.
        assert len(broken_report.findings) >= 5


class TestCommittedBaseline:
    def test_baseline_is_clean(self):
        baseline = json.loads(BASELINE.read_text())
        assert baseline["schema"] == CERT_SCHEMA
        for name, entry in baseline["entry_points"].items():
            assert entry["verdict"] == CERTIFIED, name
            assert entry["findings"] == [], name

    def test_fresh_analysis_matches_baseline(self, shipped_reports):
        baseline = json.loads(BASELINE.read_text())
        violations, notes = check_certificate(
            shipped_reports, baseline, fail_on_new=True
        )
        assert violations == []
        assert len(notes) == len(ENTRY_POINTS)


class TestCertificateSchema:
    def test_document_shape(self, shipped_reports):
        document = build_certificate(shipped_reports)
        assert document["schema"] == CERT_SCHEMA
        for entry in document["entry_points"].values():
            assert set(entry) == {
                "module",
                "function",
                "model",
                "verdict",
                "modules_scanned",
                "evidence",
                "findings",
            }
            assert set(entry["evidence"]) == {"globals_read_only", "rng_draws_traced"}

    def test_findings_serialized_with_location(self, broken_report):
        document = build_certificate([broken_report])
        findings = document["entry_points"]["broken"]["findings"]
        assert findings
        for finding in findings:
            assert set(finding) == {"category", "path", "line", "qualname", "detail"}
            assert finding["line"] > 0

    def test_round_trips_through_json(self, shipped_reports):
        document = build_certificate(shipped_reports)
        assert json.loads(json.dumps(document)) == document


class TestBudgetGate:
    """The CI gate: a newly introduced shared-state write must trip it."""

    def _reports_with_new_write(self, tmp_path, monkeypatch):
        source = textwrap.dedent(
            """
            _CACHE: dict = {}

            def lookup(key):
                if key not in _CACHE:
                    _CACHE[key] = expensive(key)
                return _CACHE[key]

            def expensive(key):
                return key * 2
            """
        )
        module_path = tmp_path / "freshly_broken.py"
        module_path.write_text(source)
        monkeypatch.syspath_prepend(str(tmp_path))
        analyzer = IsolationAnalyzer()
        return [analyzer.analyze_entry("run_load_sweep", "freshly_broken", "lookup")]

    def test_new_global_write_trips_the_gate(self, tmp_path, monkeypatch):
        baseline = json.loads(BASELINE.read_text())
        reports = self._reports_with_new_write(tmp_path, monkeypatch)
        violations, _ = check_certificate(reports, baseline)
        assert any("was CERTIFIED, now VIOLATED" in v for v in violations)
        assert any("global-write" in v for v in violations)

    def test_fail_on_new_rejects_unknown_findings(self, tmp_path, monkeypatch):
        # Against a baseline that already records one VIOLATED finding for
        # this entry, count-based checking passes but --fail-on-new rejects
        # a *different* finding key.
        reports = self._reports_with_new_write(tmp_path, monkeypatch)
        recorded = build_certificate(reports)
        fresh_keyed = json.loads(json.dumps(recorded))
        for finding in fresh_keyed["entry_points"]["run_load_sweep"]["findings"]:
            finding["detail"] = "an older, different finding"
        violations, _ = check_certificate(reports, fresh_keyed)
        assert violations == []
        violations, _ = check_certificate(reports, fresh_keyed, fail_on_new=True)
        assert any("new finding" in v for v in violations)

    def test_missing_entry_point_is_a_violation(self, shipped_reports):
        baseline = json.loads(BASELINE.read_text())
        del baseline["entry_points"]["run_load_sweep"]
        violations, _ = check_certificate(shipped_reports, baseline)
        assert any("run_load_sweep" in v and "not in" in v for v in violations)

    def test_schema_mismatch_is_a_violation(self, shipped_reports):
        violations, _ = check_certificate(shipped_reports, {"schema": "bogus/9"})
        assert violations and "re-record" in violations[0]

    def test_improvement_is_a_note_not_a_violation(self, tmp_path, monkeypatch):
        reports = self._reports_with_new_write(tmp_path, monkeypatch)
        baseline = build_certificate(reports)
        clean = textwrap.dedent(
            """
            def lookup(key):
                return key * 2
            """
        )
        (tmp_path / "freshly_fixed.py").write_text(clean)
        analyzer = IsolationAnalyzer()
        fixed = [analyzer.analyze_entry("run_load_sweep", "freshly_fixed", "lookup")]
        violations, notes = check_certificate(fixed, baseline)
        assert violations == []
        assert any("re-record" in note for note in notes)


SINGLE_FILE_CASES = {
    "global-write": """
        _MEMO = {}

        def route(key):
            _MEMO[key] = key + 1
            return _MEMO[key]
        """,
    "global-escape": """
        _TABLE = []

        def peek():
            return _TABLE
        """,
    "functools-cache": """
        import functools

        @functools.lru_cache(maxsize=None)
        def distance(a, b):
            return abs(a - b)
        """,
    "rng-untraced": """
        def pick(options, generator):
            return generator.choice(options)
        """,
    "id-keyed": """
        def index(flits):
            table = {}
            for flit in flits:
                table[id(flit)] = flit
            return table
        """,
    "unordered-iteration": """
        def drain(tags: set) -> list:
            return [tag for tag in tags]
        """,
}


class TestSingleFileProjection:
    """The per-file backend behind D011/D012/D013."""

    @pytest.mark.parametrize("category", sorted(SINGLE_FILE_CASES))
    def test_each_category_detected(self, category):
        source = textwrap.dedent(SINGLE_FILE_CASES[category])
        findings = analyze_module_isolation_source(source, "src/repro/core/fake.py")
        assert any(f.category == category for f in findings), (
            category,
            [f.render() for f in findings],
        )

    def test_traced_rng_is_clean(self):
        source = textwrap.dedent(
            """
            from repro.sim.rng import DeterministicRng

            class Source:
                def __init__(self, rng: DeterministicRng) -> None:
                    self.rng = rng

                def draw(self, options):
                    local = self.rng.spawn(7)
                    return local.choice(options) + self.rng.randint(0, 3)
            """
        )
        findings = analyze_module_isolation_source(source, "src/repro/traffic/fake.py")
        assert [f for f in findings if f.category == "rng-untraced"] == []

    def test_rng_wrapper_module_exempt(self):
        source = textwrap.dedent(
            """
            import random

            class DeterministicRng:
                def __init__(self, seed: int) -> None:
                    self._random = random.Random(seed)

                def randint(self, low: int, high: int) -> int:
                    return self._random.randint(low, high)
            """
        )
        findings = analyze_module_isolation_source(source, "src/repro/sim/rng.py")
        assert [f for f in findings if f.category == "rng-untraced"] == []

    def test_read_only_registry_is_clean(self):
        source = textwrap.dedent(
            """
            PRESETS = {"quick": 1, "paper": 2}

            def get(name):
                known = ", ".join(sorted(PRESETS))
                return PRESETS[name]
            """
        )
        findings = analyze_module_isolation_source(source, "src/repro/harness/fake.py")
        assert findings == []

    def test_sorted_set_iteration_is_clean(self):
        source = textwrap.dedent(
            """
            def drain(tags: set) -> list:
                return [tag for tag in sorted(tags)]
            """
        )
        findings = analyze_module_isolation_source(source, "src/repro/core/fake.py")
        assert findings == []

    def test_per_instance_container_is_clean(self):
        source = textwrap.dedent(
            """
            class Pool:
                def __init__(self) -> None:
                    self.slots = []

                def push(self, flit) -> None:
                    self.slots.append(flit)
            """
        )
        findings = analyze_module_isolation_source(source, "src/repro/core/fake.py")
        assert findings == []

    def test_class_level_default_shadowed_in_init_is_clean(self):
        source = textwrap.dedent(
            """
            class Stats:
                totals: dict = {}

                def __init__(self) -> None:
                    self.totals = {}

                def record(self, event: str) -> None:
                    self.totals[event] = 1
            """
        )
        findings = analyze_module_isolation_source(source, "src/repro/core/fake.py")
        assert [f for f in findings if f.category == "class-mutable-write"] == []


class TestLintRules:
    """D011/D012/D013 wiring through the lint engine, with suppression."""

    def _lint(self, source, path="src/repro/core/fake.py"):
        from repro.lint.engine import lint_source

        return lint_source(textwrap.dedent(source), path)

    def test_d011_fires_on_module_write(self):
        findings = self._lint(SINGLE_FILE_CASES["global-write"])
        assert any(f.rule_id == "D011" for f in findings)

    def test_d012_fires_on_untraced_draw(self):
        findings = self._lint(SINGLE_FILE_CASES["rng-untraced"])
        assert any(f.rule_id == "D012" for f in findings)

    def test_d013_fires_on_id_keyed_map(self):
        findings = self._lint(SINGLE_FILE_CASES["id-keyed"])
        assert any(f.rule_id == "D013" for f in findings)

    def test_disable_comment_suppresses(self):
        source = """
        _MEMO = {}

        def route(key):
            _MEMO[key] = key + 1  # frfc-lint: disable=D011
            return _MEMO[key]
        """
        findings = self._lint(source)
        assert [f for f in findings if f.rule_id == "D011"] == []

    def test_broken_fixture_module_is_lint_clean(self):
        # The fixtures suppress every sin line, so the repo-wide gate passes.
        findings = self._lint(FIXTURE.read_text(), str(FIXTURE))
        assert [f.rule_id for f in findings] == []

    def test_bare_set_expression_left_to_d002(self):
        source = """
        def f():
            return [x for x in {1, 2, 3}]
        """
        findings = self._lint(source)
        assert any(f.rule_id == "D002" for f in findings)
        assert not any(f.rule_id == "D013" for f in findings)


class TestVerifyIsolation:
    """The CI-marked dynamic witness: spawn/serial digest identity."""

    def test_spawned_and_serial_digests_identical_all_models(self):
        reports = verify_isolation(cycles=240)
        assert [r.label for r in reports] == ["FR", "VC", "WH"]
        for report in reports:
            assert report.identical, report.render()
            assert report.serial[0] == report.serial[1]
            assert report.serial[0] == report.spawned
            assert len(report.spawned) == 64

    def test_digests_differ_across_models(self):
        reports = verify_isolation(cycles=240, labels=("FR", "VC"))
        assert reports[0].spawned != reports[1].spawned

    def test_render_reports_divergence(self):
        from repro.analysis.isolation import IsolationVerifyReport

        diverged = IsolationVerifyReport(label="FR", serial=("a" * 64, "a" * 64), spawned="b" * 64)
        assert not diverged.identical
        assert "DIVERGED" in diverged.render()


class TestShippedTreeSpotChecks:
    """Regression pins for the sins this PR fixed in shipped code."""

    def test_no_departures_sentinel_is_immutable(self):
        from repro.core import input_schedule

        assert isinstance(input_schedule._NO_DEPARTURES, tuple)

    def test_git_sha_has_no_module_cache(self):
        import repro.obs.manifest as manifest

        assert not hasattr(manifest, "_git_sha_cache")
        tree = ast.parse(Path(manifest.__file__).read_text())
        mutable_globals = [
            stmt
            for stmt in tree.body
            if isinstance(stmt, (ast.Assign, ast.AnnAssign))
            and isinstance(getattr(stmt, "value", None), (ast.Dict, ast.List, ast.Set))
        ]
        assert mutable_globals == []
