"""Tests for the static hot-path analyzer (repro.analysis.hotpath)."""

import importlib
import json
import sys
import textwrap

import pytest

from repro.analysis.hotpath import (
    ALL_CATEGORIES,
    ALLOCATION_CATEGORIES,
    BUDGET_SCHEMA,
    BUDGETED_CATEGORIES,
    analyze_hot_model,
    analyze_hot_networks,
    analyze_module_hotpath_source,
    build_budget,
    check_budget,
    verify_allocations,
)


#: A single-file model with three known hot-path sins: a comprehension
#: inside a loop, a slotless actor class, and a repeated attribute chain.
DIRTY_SOURCE = textwrap.dedent(
    '''
    class Counts:
        __slots__ = ("total",)

        def __init__(self):
            self.total = 0


    class Stats:
        __slots__ = ("counts",)

        def __init__(self):
            self.counts = Counts()


    class DirtyRouter:
        def __init__(self, node):
            self.node = node
            self.queue = []
            self.stats = Stats()

        def phase(self, cycle):
            for _ in range(4):
                picks = [q for q in self.queue if q > cycle]
                self.queue.extend(picks)
                if self.stats.counts.total > 0:
                    self.stats.counts.total = self.stats.counts.total - 1


    class DirtyNetwork:
        def __init__(self, n):
            self.routers = [DirtyRouter(k) for k in range(n)]

        def step(self, cycle):
            for router in self.routers:
                router.phase(cycle)
    '''
)


#: The same shape with every sin fixed; the analyzer must stay silent.
CLEAN_SOURCE = textwrap.dedent(
    '''
    class CleanRouter:
        __slots__ = ("node", "count")

        def __init__(self, node: int):
            self.node = node
            self.count = 0

        def phase(self, cycle: int) -> None:
            self.count += 1


    class CleanNetwork:
        def __init__(self, n: int):
            self.routers = [CleanRouter(k) for k in range(n)]

        def step(self, cycle: int) -> None:
            for router in self.routers:
                router.phase(cycle)
    '''
)


def categories(findings):
    return {finding.category for finding in findings}


class TestFixtureModules:
    @pytest.fixture(scope="class")
    def dirty(self):
        return analyze_module_hotpath_source(DIRTY_SOURCE, "dirty.py")

    def test_finds_comprehension_in_loop(self, dirty):
        hits = [f for f in dirty if f.category == "comprehension"]
        assert hits, f"no comprehension finding in {dirty}"
        assert any(f.in_loop for f in hits)
        assert all(f.qualname == "DirtyRouter.phase" for f in hits)

    def test_finds_slotless_actor_class(self, dirty):
        hits = [f for f in dirty if f.category == "slotless_class"]
        assert hits, "slotless DirtyRouter not flagged"
        assert all("DirtyRouter" in f.detail for f in hits)

    def test_finds_repeated_attribute_chain(self, dirty):
        hits = [f for f in dirty if f.category == "attr_chain_loop"]
        assert hits, "repeated self.stats.counts chain not flagged"
        assert any("self.stats.counts" in f.detail for f in hits)

    def test_slotted_helper_classes_not_flagged(self, dirty):
        slotless = [f for f in dirty if f.category == "slotless_class"]
        assert not any("Stats" in f.detail or "Counts" in f.detail for f in slotless)

    def test_clean_fixture_passes(self):
        assert analyze_module_hotpath_source(CLEAN_SOURCE, "clean.py") == []

    def test_syntax_error_returns_no_findings(self):
        assert analyze_module_hotpath_source("def broken(:", "bad.py") == []


class TestShippedModels:
    @pytest.fixture(scope="class")
    def reports(self):
        return analyze_hot_networks()

    def test_three_models_analyzed(self, reports):
        assert [r.label for r in reports] == ["FR", "VC", "WH"]
        for report in reports:
            assert report.hot_functions, f"{report.label}: empty hot set"
            assert report.hot_classes, f"{report.label}: no hot classes"

    def test_hot_sets_cover_the_kernel(self, reports):
        fr = reports[0]
        names = {f.qualname for f in fr.hot_functions}
        assert "FRNetwork.step" in names
        assert any(name.startswith("FRRouter.") for name in names)

    def test_shipped_code_has_no_slotless_hot_classes(self, reports):
        for report in reports:
            assert report.counts()["slotless_class"] == 0, (
                f"{report.label}: hot-path classes without __slots__: "
                + "; ".join(
                    f.detail
                    for f in report.findings
                    if f.category == "slotless_class"
                )
            )

    def test_shipped_code_has_no_hot_imports_or_str_concat(self, reports):
        for report in reports:
            counts = report.counts()
            assert counts["hot_import"] == 0
            assert counts["str_concat"] == 0

    def test_counts_cover_every_category(self, reports):
        for report in reports:
            assert set(report.counts()) == set(ALL_CATEGORIES)

    def test_format_mentions_the_model(self, reports):
        text = reports[0].format()
        assert "FR" in text and "FRNetwork" in text

    def test_single_model_entry_point(self):
        report = analyze_hot_model("repro.core.network", "FRNetwork")
        assert report.class_name == "FRNetwork"
        assert report.hot_functions


class TestBudget:
    @pytest.fixture(scope="class")
    def reports(self):
        return analyze_hot_networks()

    def test_roundtrip_is_green(self, reports):
        budget = build_budget(reports)
        assert budget["schema"] == BUDGET_SCHEMA
        violations, _notes = check_budget(reports, budget)
        assert violations == []

    def test_budget_document_shape(self, reports):
        budget = build_budget(reports)
        assert set(budget["models"]) == {"FR", "VC", "WH"}
        for entry in budget["models"].values():
            assert set(entry["categories"]) == set(ALL_CATEGORIES)

    def test_budget_is_json_serializable(self, reports):
        parsed = json.loads(json.dumps(build_budget(reports)))
        assert parsed["schema"] == BUDGET_SCHEMA

    def test_exceeding_budget_is_a_violation(self, reports):
        budget = build_budget(reports)
        budget["models"]["FR"]["categories"] = dict(
            budget["models"]["FR"]["categories"]
        )
        for category in sorted(BUDGETED_CATEGORIES):
            if budget["models"]["FR"]["categories"][category] > 0:
                budget["models"]["FR"]["categories"][category] -= 1
                break
        else:
            pytest.skip("no non-zero budgeted category to tighten")
        violations, _notes = check_budget(reports, budget)
        assert violations and any(category in v for v in violations)

    def test_missing_model_is_a_violation(self, reports):
        budget = build_budget(reports)
        del budget["models"]["VC"]
        violations, _notes = check_budget(reports, budget)
        assert any("VC" in v for v in violations)

    def test_improvement_is_a_note_not_a_violation(self, reports):
        budget = build_budget(reports)
        budget["models"]["FR"]["categories"] = dict(
            budget["models"]["FR"]["categories"]
        )
        budget["models"]["FR"]["categories"]["list_display"] += 5
        violations, notes = check_budget(reports, budget)
        assert violations == []
        assert any("list_display" in note for note in notes)


FIXTURE_V1 = DIRTY_SOURCE

#: V1 plus one brand-new allocation site on the hot path.
FIXTURE_V2 = DIRTY_SOURCE.replace(
    "self.queue.extend(picks)",
    "self.queue.extend(picks)\n"
    "            extra = {cycle: picks}\n"
    "            self.queue.extend(extra[cycle])",
)


class TestBudgetGateOnFixture:
    """The CI-gate semantics: a new allocation site must trip the budget."""

    def _analyze(self, tmp_path, source, name):
        module_dir = tmp_path / name
        module_dir.mkdir()
        (module_dir / f"{name}.py").write_text(source, encoding="utf-8")
        sys.path.insert(0, str(module_dir))
        importlib.invalidate_caches()
        try:
            return analyze_hot_model(name, "DirtyNetwork", label="fixture")
        finally:
            sys.path.remove(str(module_dir))
            sys.modules.pop(name, None)

    def test_new_allocation_site_fails_the_gate(self, tmp_path):
        assert FIXTURE_V2 != FIXTURE_V1
        before = self._analyze(tmp_path, FIXTURE_V1, "fixmod_v1")
        after = self._analyze(tmp_path, FIXTURE_V2, "fixmod_v2")
        after.label = before.label
        budget = build_budget([before])
        violations, _notes = check_budget([after], budget)
        assert violations, "new dict_display on the hot path did not trip the gate"
        assert any("dict_display" in v for v in violations)

    def test_unchanged_fixture_stays_green(self, tmp_path):
        before = self._analyze(tmp_path, FIXTURE_V1, "fixmod_a")
        again = self._analyze(tmp_path, FIXTURE_V1, "fixmod_b")
        again.label = before.label
        violations, _notes = check_budget([again], build_budget([before]))
        assert violations == []


class TestTracemallocCrossCheck:
    def test_fr_quick_point_is_covered(self):
        report = analyze_hot_model(
            "repro.core.network", "FRNetwork", label="FR"
        )
        verdict = verify_allocations(report, warmup=32, cycles=64)
        assert verdict.total_count > 0
        assert verdict.passed, verdict.format()
        assert verdict.coverage >= verdict.threshold
        assert "OK" in verdict.format()

    def test_unknown_label_is_rejected(self):
        from repro.analysis.phases import AnalysisError

        report = analyze_hot_model(
            "repro.core.network", "FRNetwork", label="mystery"
        )
        with pytest.raises(AnalysisError):
            verify_allocations(report)


class TestCategoryTaxonomy:
    def test_budgeted_categories_are_a_subset(self):
        assert set(BUDGETED_CATEGORIES) <= set(ALL_CATEGORIES)

    def test_allocation_categories_are_budgeted_except_tuples(self):
        assert "tuple_display" not in BUDGETED_CATEGORIES
        for category in ALLOCATION_CATEGORIES:
            if category != "tuple_display":
                assert category in BUDGETED_CATEGORIES
