"""Tests for the frfc-analyze command line (tools/frfc_analyze.py)."""

import importlib.util
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def cli():
    """Import tools/frfc_analyze.py by file path (tools/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "frfc_analyze_cli", REPO / "tools" / "frfc_analyze.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCdgCommand:
    def test_self_check_passes(self, cli, capsys):
        assert cli.main(["cdg", "--mesh", "4x4"]) == 0
        out = capsys.readouterr().out
        assert "OK: xy is deadlock-free" in out
        assert "OK: yx-mixed is deadlock-prone" in out
        assert "OK: adaptive-noescape is deadlock-prone" in out

    def test_single_clean_routing_exit_zero(self, cli, capsys):
        assert cli.main(["cdg", "--routing", "xy", "--mesh", "4x4"]) == 0

    def test_single_broken_routing_exit_one(self, cli, capsys):
        assert cli.main(["cdg", "--routing", "yx-mixed", "--mesh", "4x4"]) == 1
        assert "DEADLOCK" in capsys.readouterr().out

    def test_bad_mesh_spec_rejected(self, cli):
        with pytest.raises(SystemExit):
            cli.main(["cdg", "--mesh", "wide"])


class TestRacesCommand:
    def test_shipped_networks_clean_exit_zero(self, cli, capsys):
        assert cli.main(["races"]) == 0
        out = capsys.readouterr().out
        for label in ("FR", "VC", "WH"):
            assert label in out

    def test_single_model_spec(self, cli, capsys):
        assert cli.main(["races", "--model", "repro.core.network:FRNetwork"]) == 0

    def test_bad_model_spec_rejected(self, cli):
        with pytest.raises(SystemExit):
            cli.main(["races", "--model", "no-colon-here"])


class TestPermuteCommand:
    def test_bit_identical_exit_zero(self, cli, capsys):
        assert cli.main(["permute", "--orders", "3", "--cycles", "120"]) == 0
        assert "bit-identical" in capsys.readouterr().out
