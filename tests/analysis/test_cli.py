"""Tests for the frfc-analyze command line (tools/frfc_analyze.py)."""

import importlib.util
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def cli():
    """Import tools/frfc_analyze.py by file path (tools/ is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "frfc_analyze_cli", REPO / "tools" / "frfc_analyze.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCdgCommand:
    def test_self_check_passes(self, cli, capsys):
        assert cli.main(["cdg", "--mesh", "4x4"]) == 0
        out = capsys.readouterr().out
        assert "OK: xy is deadlock-free" in out
        assert "OK: yx-mixed is deadlock-prone" in out
        assert "OK: adaptive-noescape is deadlock-prone" in out

    def test_single_clean_routing_exit_zero(self, cli, capsys):
        assert cli.main(["cdg", "--routing", "xy", "--mesh", "4x4"]) == 0

    def test_single_broken_routing_exit_one(self, cli, capsys):
        assert cli.main(["cdg", "--routing", "yx-mixed", "--mesh", "4x4"]) == 1
        assert "DEADLOCK" in capsys.readouterr().out

    def test_bad_mesh_spec_rejected(self, cli):
        with pytest.raises(SystemExit):
            cli.main(["cdg", "--mesh", "wide"])


class TestRacesCommand:
    def test_shipped_networks_clean_exit_zero(self, cli, capsys):
        assert cli.main(["races"]) == 0
        out = capsys.readouterr().out
        for label in ("FR", "VC", "WH"):
            assert label in out

    def test_single_model_spec(self, cli, capsys):
        assert cli.main(["races", "--model", "repro.core.network:FRNetwork"]) == 0

    def test_bad_model_spec_rejected(self, cli):
        with pytest.raises(SystemExit):
            cli.main(["races", "--model", "no-colon-here"])


class TestPermuteCommand:
    def test_bit_identical_exit_zero(self, cli, capsys):
        assert cli.main(["permute", "--orders", "3", "--cycles", "120"]) == 0
        assert "bit-identical" in capsys.readouterr().out


class TestHotpathCommand:
    def test_reports_all_three_models(self, cli, capsys):
        assert cli.main(["hotpath"]) == 0
        out = capsys.readouterr().out
        for label in ("FR", "VC", "WH"):
            assert f"hot path of {label}" in out

    def test_json_emits_budget_document(self, cli, capsys):
        import json

        assert cli.main(["hotpath", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "frfc-hotpath/1"
        assert set(document["models"]) == {"FR", "VC", "WH"}

    def test_committed_budget_gate_green(self, cli, capsys):
        baseline = REPO / "benchmarks" / "results" / "HOTPATH_baseline.json"
        assert baseline.exists(), "HOTPATH_baseline.json must be committed"
        assert cli.main(["hotpath", "--check-budget", str(baseline)]) == 0
        assert "budget OK" in capsys.readouterr().out

    def test_write_then_check_roundtrip(self, cli, capsys, tmp_path):
        budget = tmp_path / "budget.json"
        assert cli.main(["hotpath", "--write-budget", str(budget)]) == 0
        assert budget.exists()
        assert cli.main(["hotpath", "--check-budget", str(budget)]) == 0

    def test_missing_budget_exit_one(self, cli, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert cli.main(["hotpath", "--check-budget", str(missing)]) == 1

    def test_single_model_spec(self, cli, capsys):
        assert (
            cli.main(["hotpath", "--model", "repro.core.network:FRNetwork"]) == 0
        )
        assert "FRNetwork" in capsys.readouterr().out

    def test_bad_model_spec_rejected(self, cli):
        with pytest.raises(SystemExit):
            cli.main(["hotpath", "--model", "no-colon-here"])


class TestIsolationCommand:
    def test_reports_all_entry_points_certified(self, cli, capsys):
        assert cli.main(["isolation"]) == 0
        out = capsys.readouterr().out
        for name in (
            "run_experiment[FR]",
            "run_experiment[VC]",
            "run_experiment[WH]",
            "run_load_sweep",
        ):
            assert f"{name}: CERTIFIED" in out

    def test_json_emits_certificate_document(self, cli, capsys):
        import json

        assert cli.main(["isolation", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "frfc-isolation/1"
        assert set(document["entry_points"]) == {
            "run_experiment[FR]",
            "run_experiment[VC]",
            "run_experiment[WH]",
            "run_load_sweep",
        }

    def test_committed_certificate_gate_green(self, cli, capsys):
        baseline = REPO / "benchmarks" / "results" / "ISOLATION_baseline.json"
        assert baseline.exists(), "ISOLATION_baseline.json must be committed"
        assert (
            cli.main(
                ["isolation", "--check-budget", str(baseline), "--fail-on-new"]
            )
            == 0
        )
        assert "isolation certificate OK" in capsys.readouterr().out

    def test_write_then_check_roundtrip(self, cli, capsys, tmp_path):
        certificate = tmp_path / "certificate.json"
        assert cli.main(["isolation", "--write-budget", str(certificate)]) == 0
        assert certificate.exists()
        assert cli.main(["isolation", "--check-budget", str(certificate)]) == 0

    def test_missing_certificate_exit_one(self, cli, tmp_path):
        missing = tmp_path / "nope.json"
        assert cli.main(["isolation", "--check-budget", str(missing)]) == 1

    def test_broken_fixture_entry_violated_exit_one(self, cli, capsys):
        assert (
            cli.main(
                ["isolation", "--entry", "repro.analysis.broken_isolation:drive"]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "VIOLATED" in out
        for category in (
            "rng-untraced",
            "global-write",
            "class-mutable-write",
            "id-keyed",
            "unordered-iteration",
        ):
            assert category in out

    def test_bad_entry_spec_rejected(self, cli):
        with pytest.raises(SystemExit):
            cli.main(["isolation", "--entry", "no-colon-here"])

    def test_verify_spawn_digests_identical(self, cli, capsys):
        assert cli.main(["isolation", "--verify", "--cycles", "240"]) == 0
        out = capsys.readouterr().out
        assert out.count("identical") == 3
