"""Tests for the runtime order-permutation differ.

The headline property: a seeded FR workload produces bit-identical
end-of-run statistics under at least three shuffled router evaluation
orders.  The differ itself is also exercised: it must reject degenerate
inputs and actually distinguish different workloads (a digest that never
differs proves nothing).
"""

import pytest

from repro.analysis.permute import _run_once, run_permutation_diff
from repro.core.config import FRConfig
from repro.topology.mesh import Mesh2D


class TestBitIdenticalAcrossOrders:
    @pytest.fixture(scope="class")
    def report(self):
        return run_permutation_diff(cycles=200, orders=4)

    def test_identical(self, report):
        assert report.identical, report.format()
        assert report.mismatches == []

    def test_at_least_three_shuffled_orders(self, report):
        labels = [digest.eval_order_label for digest in report.digests]
        assert labels[0] == "natural"
        assert len([label for label in labels if label.startswith("shuffle")]) >= 3

    def test_digests_share_one_hash(self, report):
        assert len({digest.hexdigest() for digest in report.digests}) == 1

    def test_run_produced_traffic(self, report):
        """Guard against a vacuous pass on an idle network."""
        assert report.digests[0].packets_delivered > 0
        assert len(report.digests[0].latency_samples) > 0

    def test_identical_under_invariant_checker(self):
        report = run_permutation_diff(cycles=120, orders=3, check_invariants=True)
        assert report.identical, report.format()


class TestDifferIsNotVacuous:
    def test_different_seeds_produce_different_digests(self):
        a = run_permutation_diff(cycles=150, orders=2, seed=1)
        b = run_permutation_diff(cycles=150, orders=2, seed=2)
        assert a.digests[0].hexdigest() != b.digests[0].hexdigest()

    def test_diff_fields_names_the_divergence(self):
        a = run_permutation_diff(cycles=150, orders=2, seed=1)
        b = run_permutation_diff(cycles=100, orders=2, seed=1)
        differing = a.digests[0].diff_fields(b.digests[0])
        assert "cycles" in differing


class TestInputValidation:
    def test_fewer_than_two_orders_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            run_permutation_diff(orders=1)

    def test_non_permutation_eval_order_rejected(self):
        mesh = Mesh2D(2, 2)
        with pytest.raises(ValueError, match="not a permutation"):
            _run_once(
                FRConfig(),
                offered_load=0.3,
                packet_length=5,
                seed=1,
                cycles=10,
                mesh=mesh,
                eval_order=[0, 0, 1, 2],
                label="broken",
                check_invariants=False,
            )


class TestReportFormat:
    def test_verdict_and_hashes_printed(self):
        report = run_permutation_diff(cycles=100, orders=3)
        text = report.format()
        assert "bit-identical" in text
        assert "natural" in text
        assert "shuffle[1]" in text
