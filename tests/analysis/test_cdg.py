"""Tests for the channel-dependency-graph deadlock prover.

Both directions of the Dally-Seitz criterion are exercised: the shipped XY
routing must certify deadlock-free with a checkable rank certificate, and
each deliberately broken routing fixture must produce an explicit channel
cycle -- a prover that cannot catch known-broken routings proves nothing.
"""

import pytest

from repro.analysis.broken_routing import GreedyDimensionRouting, YXMixedRouting
from repro.analysis.cdg import (
    Channel,
    build_cdg,
    prove_deadlock_freedom,
    tarjan_sccs,
)
from repro.topology.mesh import Mesh2D
from repro.topology.routing import DimensionOrderRouting


class TestXYIsDeadlockFree:
    def test_certified_on_8x8(self):
        mesh = Mesh2D(8, 8)
        report = prove_deadlock_freedom(DimensionOrderRouting(mesh), mesh)
        assert report.deadlock_free
        assert report.counterexample is None
        assert report.livelocks == []
        # 2 unidirectional channels per mesh edge: 2 * (2 * 8 * 7) = 224.
        assert len(report.channels) == 224

    def test_certificate_every_edge_increases_rank(self):
        mesh = Mesh2D(4, 4)
        report = prove_deadlock_freedom(DimensionOrderRouting(mesh), mesh)
        assert report.ranks is not None
        for held, wants in report.edges.items():
            for wanted in wants:
                assert report.ranks[held] < report.ranks[wanted], (
                    f"{held.format()} -> {wanted.format()} does not increase rank"
                )

    def test_report_format_mentions_certificate(self):
        mesh = Mesh2D(4, 4)
        report = prove_deadlock_freedom(
            DimensionOrderRouting(mesh), mesh, routing_name="xy"
        )
        text = report.format()
        assert "xy on 4x4 mesh" in text
        assert "deadlock-free" in text


class TestBrokenRoutingsAreCaught:
    @pytest.mark.parametrize("routing_class", [YXMixedRouting, GreedyDimensionRouting])
    def test_cycle_exhibited(self, routing_class):
        mesh = Mesh2D(8, 8)
        report = prove_deadlock_freedom(routing_class(mesh), mesh)
        assert not report.deadlock_free
        assert report.ranks is None
        cycle = report.counterexample
        assert cycle is not None and len(cycle) >= 3

    @pytest.mark.parametrize("routing_class", [YXMixedRouting, GreedyDimensionRouting])
    def test_counterexample_is_a_real_cycle(self, routing_class):
        """The printed cycle must close and follow actual CDG edges."""
        mesh = Mesh2D(8, 8)
        report = prove_deadlock_freedom(routing_class(mesh), mesh)
        cycle = report.counterexample
        assert cycle[0] == cycle[-1]
        for held, wanted in zip(cycle, cycle[1:]):
            assert wanted in report.edges[held], (
                f"{held.format()} -> {wanted.format()} is not a CDG edge"
            )

    def test_broken_fixtures_still_deliver(self):
        """The fixtures are deadlock-prone, not livelocked: routes terminate."""
        mesh = Mesh2D(4, 4)
        for routing_class in (YXMixedRouting, GreedyDimensionRouting):
            report = prove_deadlock_freedom(routing_class(mesh), mesh)
            assert report.livelocks == []


class TestLivelockHandling:
    class PingPongRouting:
        """Bounces every packet between a node and its west neighbour."""

        def __init__(self, mesh):
            self.mesh = mesh
            self._xy = DimensionOrderRouting(mesh)

        def output_port(self, node, destination):
            from repro.topology.mesh import EAST, WEST

            if node == destination:
                return self._xy.output_port(node, destination)
            return WEST if node % self.mesh.width else EAST

    def test_livelocked_routing_reported_not_raised(self):
        mesh = Mesh2D(4, 4)
        report = prove_deadlock_freedom(self.PingPongRouting(mesh), mesh)
        assert not report.deadlock_free
        assert report.livelocks
        livelock = report.livelocks[0]
        # The node cycle closes on itself.
        assert livelock.cycle[-1] in livelock.cycle[:-1]
        assert "livelocks" in livelock.format()


class TestGraphMachinery:
    def test_build_cdg_excludes_injection_and_ejection(self):
        mesh = Mesh2D(4, 4)
        edges, livelocks = build_cdg(DimensionOrderRouting(mesh), mesh)
        assert livelocks == []
        for channel in edges:
            assert channel.src != channel.dst

    def test_tarjan_finds_known_cycle(self):
        a, b, c = (Channel(0, 1, 0), Channel(1, 2, 0), Channel(2, 0, 0))
        edges = {a: {b}, b: {c}, c: {a}}
        components = tarjan_sccs(edges)
        assert sorted(len(comp) for comp in components) == [3]

    def test_tarjan_reverse_topological_on_chain(self):
        a, b, c = (Channel(0, 1, 0), Channel(1, 2, 0), Channel(2, 3, 0))
        edges = {a: {b}, b: {c}, c: set()}
        components = tarjan_sccs(edges)
        # Every edge points at an earlier-emitted component.
        position = {
            channel: index
            for index, comp in enumerate(components)
            for channel in comp
        }
        assert position[b] < position[a]
        assert position[c] < position[b]
