"""Tests for the FR event trace log."""

import pytest

from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.sim.kernel import Simulator
from repro.sim.tracelog import TraceLog
from repro.topology.mesh import Mesh2D


@pytest.fixture
def traced_network(mesh4):
    network = FRNetwork(
        FRConfig(data_buffers_per_input=6), mesh=mesh4, injection_rate=0.03, seed=1
    )
    log = TraceLog().attach(network)
    Simulator(network).step(300)
    return network, log


class TestTraceLog:
    def test_records_all_event_kinds(self, traced_network):
        _, log = traced_network
        kinds = {event.kind for event in log.events}
        assert kinds == {"control_arrival", "data_arrival", "data_eject"}

    def test_packet_timeline_is_ordered_and_consistent(self, traced_network):
        _, log = traced_network
        ejected = {e.packet_id for e in log.events if e.kind == "data_eject"}
        packet_id = sorted(ejected)[0]
        events = log.packet_events(packet_id)
        cycles = [event.cycle for event in events]
        assert cycles == sorted(cycles)
        # Every ejection is preceded by an arrival of the same flit somewhere.
        ejects = [e for e in events if e.kind == "data_eject"]
        arrivals = [e for e in events if e.kind == "data_arrival"]
        assert len(arrivals) >= len(ejects)

    def test_control_precedes_first_data_at_destination(self, traced_network):
        """The defining property of flit-reservation flow control, read
        straight off the trace: at the destination, the control head flit
        arrives no later than the first ejected data flit."""
        network, log = traced_network
        checked = 0
        ejected = {e.packet_id for e in log.events if e.kind == "data_eject"}
        for packet_id in sorted(ejected)[:20]:
            events = log.packet_events(packet_id)
            dest_ejects = [e for e in events if e.kind == "data_eject"]
            dest = dest_ejects[0].node
            controls = [
                e for e in events
                if e.kind == "control_arrival" and e.node == dest
            ]
            if not controls:
                continue  # head consumed before tracing saw it (edge window)
            assert controls[0].cycle <= dest_ejects[0].cycle
            checked += 1
        assert checked > 5

    def test_format_packet(self, traced_network):
        _, log = traced_network
        packet_id = next(iter(e.packet_id for e in log.events))
        text = log.format_packet(packet_id)
        assert f"packet {packet_id} timeline:" in text
        assert "cycle" in text

    def test_format_unknown_packet(self, traced_network):
        _, log = traced_network
        assert "no events" in log.format_packet(999_999)

    def test_capacity_bounds_memory(self, mesh4):
        network = FRNetwork(
            FRConfig(data_buffers_per_input=6), mesh=mesh4, injection_rate=0.05, seed=1
        )
        log = TraceLog(capacity=50).attach(network)
        Simulator(network).step(300)
        assert len(log) == 50

    def test_detach_restores_hooks(self, mesh4):
        network = FRNetwork(
            FRConfig(data_buffers_per_input=6), mesh=mesh4, injection_rate=0.03, seed=1
        )
        original_ejects = [router.eject_data for router in network.routers]
        log = TraceLog().attach(network)
        log.detach()
        for router, original in zip(network.routers, original_ejects):
            assert router.eject_data is original
            assert router.on_control_arrival is None

    def test_double_attach_rejected(self, mesh4):
        network = FRNetwork(
            FRConfig(data_buffers_per_input=6), mesh=mesh4, injection_rate=0.03, seed=1
        )
        log = TraceLog().attach(network)
        with pytest.raises(RuntimeError):
            log.attach(network)
