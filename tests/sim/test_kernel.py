"""Tests for the simulation kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


class CountingNetwork:
    def __init__(self):
        self.cycles_seen = []

    def step(self, cycle):
        self.cycles_seen.append(cycle)


class TestStepping:
    def test_step_advances_clock(self):
        sim = Simulator(CountingNetwork())
        sim.step()
        sim.step(3)
        assert sim.cycle == 4

    def test_network_sees_consecutive_cycles(self):
        net = CountingNetwork()
        sim = Simulator(net)
        sim.step(5)
        assert net.cycles_seen == [0, 1, 2, 3, 4]

    def test_hard_ceiling(self):
        sim = Simulator(CountingNetwork(), max_cycles=10)
        with pytest.raises(SimulationError):
            sim.step(100)


class TestRunUntil:
    def test_stops_when_condition_true(self):
        net = CountingNetwork()
        sim = Simulator(net)
        end = sim.run_until(lambda: len(net.cycles_seen) >= 7)
        assert end == 7
        assert sim.cycle == 7

    def test_immediate_condition_runs_zero_cycles(self):
        sim = Simulator(CountingNetwork())
        assert sim.run_until(lambda: True) == 0

    def test_deadline_raises(self):
        sim = Simulator(CountingNetwork())
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, deadline=50)

    def test_check_every_granularity(self):
        net = CountingNetwork()
        sim = Simulator(net)
        sim.run_until(lambda: len(net.cycles_seen) >= 5, check_every=4)
        # Overshoot is bounded by the check granularity.
        assert 5 <= sim.cycle <= 8
