"""Tests for the shared network-model scaffolding."""

import pytest

from repro.sim.netbase import NetworkModel
from repro.topology.mesh import Mesh2D
from repro.traffic.packet import Packet


class MinimalNetwork(NetworkModel):
    """A network that delivers nothing -- enough to test the bookkeeping."""

    @property
    def flow_control_name(self):
        return "MIN"

    def source_queue_length(self, node):
        return 0

    def step(self, cycle):
        self._create_packets(cycle)


@pytest.fixture
def network():
    return MinimalNetwork(Mesh2D(4, 4), packet_length=5, injection_rate=0.5, seed=1)


class TestPacketCreation:
    def test_packets_registered_in_flight(self, network):
        for cycle in range(20):
            network.step(cycle)
        assert len(network.packets_in_flight) > 50
        created = sum(source.packets_created for source in network.sources)
        assert created == len(network.packets_in_flight)

    def test_unique_packet_ids(self, network):
        for cycle in range(20):
            network.step(cycle)
        ids = list(network.packets_in_flight)
        assert len(ids) == len(set(ids))

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            MinimalNetwork(Mesh2D(4, 4), packet_length=5, injection_rate=0.0)


class TestMeasurement:
    def test_window_tags_packets(self, network):
        network.set_measure_window(5, 10)
        for cycle in range(20):
            network.step(cycle)
        measured = [p for p in network.packets_in_flight.values() if p.measured]
        assert measured
        for packet in measured:
            assert 5 <= packet.creation_cycle < 10
        assert network.measured_outstanding == len(measured)

    def test_eject_flit_accounting(self, network):
        network.set_measure_window(0, 100)
        network.step(0)
        packet = next(iter(network.packets_in_flight.values()))
        for i in range(packet.length):
            network._eject_flit(packet, cycle=30 + i)
        assert packet.packet_id not in network.packets_in_flight
        assert network.packets_delivered == 1
        if packet.measured:
            assert network.latency_stats.count == 1

    def test_stop_injection(self, network):
        network.stop_injection()
        for cycle in range(20):
            network.step(cycle)
        assert not network.packets_in_flight

    def test_traffic_pattern_instance_accepted(self):
        from repro.traffic.patterns import TransposeTraffic

        mesh = Mesh2D(4, 4)
        network = MinimalNetwork(
            mesh, packet_length=5, injection_rate=0.5, seed=1,
            traffic=TransposeTraffic(mesh),
        )
        for cycle in range(10):
            network.step(cycle)
        for packet in network.packets_in_flight.values():
            x, y = mesh.coordinates(packet.source)
            assert packet.destination == mesh.node_at(y, x)
