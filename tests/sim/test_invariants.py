"""Tests for the cycle-level invariant checker.

Clean networks must sail through with the checker attached; deliberately
corrupted state -- negative buffer credits, double-booked output slots,
cleared busy bits, an unbalanced credit ledger, a vanished flit -- must be
caught within one cycle of the corruption.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.vc.config import VC8
from repro.baselines.wormhole.network import WormholeConfig
from repro.core.config import FR6
from repro.harness.experiment import build_network, run_experiment
from repro.sim.invariants import InvariantChecker, InvariantViolation
from repro.sim.kernel import Simulator

WARM_CYCLES = 120


def warmed_fr(seed=1, load=0.4, cycles=WARM_CYCLES):
    """An FR6 network stepped past warm-up with the checker attached."""
    network = build_network(FR6, load, packet_length=5, seed=seed)
    simulator = Simulator(network, checker=InvariantChecker())
    simulator.step(cycles)
    return network, simulator


def warmed_vc(seed=1, load=0.4, cycles=WARM_CYCLES):
    network = build_network(VC8, load, packet_length=5, seed=seed)
    simulator = Simulator(network, checker=InvariantChecker())
    simulator.step(cycles)
    return network, simulator


def fr_claim_sites(network, after_cycle):
    """(router, scheduler_port, departure, out_port) for scheduled movements
    departing safely after ``after_cycle`` (so one more simulated cycle will
    not consume them before the checker looks)."""
    sites = []
    for router in network.routers:
        for port, scheduler in enumerate(router.input_sched):
            for departure, entries in scheduler.departures.items():
                for _, out_port in entries:
                    if departure > after_cycle:
                        sites.append((router, port, departure, out_port))
            for departure, out_port in scheduler.expected.values():
                if departure > after_cycle:
                    sites.append((router, port, departure, out_port))
    return sites


def connected_table(network):
    """A (router, port, table) with finite buffers on a live output."""
    for router in network.routers:
        for port in router.connected_outputs:
            table = router.out_tables[port]
            if table is not None and not table.infinite_buffers:
                return router, port, table
    raise AssertionError("no connected finite-buffer table in the network")


class TestCleanRuns:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_fr_run_is_clean(self, seed):
        _, simulator = warmed_fr(seed=seed)
        assert simulator.checker.checks_run == WARM_CYCLES

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_vc_run_is_clean(self, seed):
        _, simulator = warmed_vc(seed=seed)
        assert simulator.checker.checks_run == WARM_CYCLES

    def test_wormhole_run_is_clean(self):
        network = build_network(WormholeConfig(buffers_per_input=8), 0.3, seed=3)
        simulator = Simulator(network, checker=InvariantChecker())
        simulator.step(200)
        assert simulator.checker.checks_run == 200

    def test_fr_heavy_load_is_clean(self):
        # The Figure 5 operating point the acceptance criteria call out.
        _, simulator = warmed_fr(seed=7, load=0.4, cycles=400)
        assert simulator.checker.checks_run == 400

    def test_run_experiment_sanitized(self):
        result = run_experiment(
            FR6, 0.4, packet_length=5, seed=1, preset="quick", check_invariants=True
        )
        assert result.accepted_load > 0.3


class TestCorruptedReservationTable:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_negative_credit_caught_within_one_cycle(self, seed):
        network, simulator = warmed_fr(seed=seed)
        _, _, table = connected_table(network)
        table.advance(simulator.cycle)
        slot = (simulator.cycle + 2) % table.horizon
        # A phantom charge: drives the free count at that cycle negative.
        table._dfree[slot] -= table.downstream_buffers + 5
        with pytest.raises(InvariantViolation):
            simulator.step()

    def test_optimistic_credit_caught_within_one_cycle(self):
        network, simulator = warmed_fr(seed=11)
        _, _, table = connected_table(network)
        table.advance(simulator.cycle)
        slot = simulator.cycle % table.horizon
        table._dfree[slot] += 3  # phantom free buffers from this cycle on
        with pytest.raises(InvariantViolation) as excinfo:
            simulator.step()
        # The checker raised before the clock advanced: caught in-cycle.
        assert excinfo.value.cycle == simulator.cycle

    def test_ledger_imbalance_caught_within_one_cycle(self):
        network, simulator = warmed_fr(seed=5)
        _, _, table = connected_table(network)
        table.reservations_made += 1  # a reservation that never charged a slot
        with pytest.raises(InvariantViolation) as excinfo:
            simulator.step()
        assert "ledger" in str(excinfo.value)

    def test_busy_bit_cleared_caught_within_one_cycle(self):
        network, simulator = warmed_fr(seed=2, load=0.5)
        sites = fr_claim_sites(network, after_cycle=simulator.cycle + 2)
        assert sites, "expected scheduled movements at 50% load"
        router, _, departure, out_port = sites[0]
        table = router.out_tables[out_port]
        table.advance(simulator.cycle)
        table._busy[departure % table.horizon] = 0  # drop the reservation
        with pytest.raises(InvariantViolation) as excinfo:
            simulator.step()
        assert excinfo.value.node == router.node


class TestDoubleBooking:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_double_booked_slot_caught_within_one_cycle(self, seed):
        network, simulator = warmed_fr(seed=seed, load=0.5)
        sites = fr_claim_sites(network, after_cycle=simulator.cycle + 2)
        assert sites, "expected scheduled movements at 50% load"
        router, port, departure, out_port = sites[0]
        # A second movement claiming the same (output, cycle) slot, filed by
        # a sibling input scheduler of the same router.
        sibling = (port + 1) % len(router.input_sched)
        router.input_sched[sibling].departures.setdefault(departure, []).append(
            (0, out_port)
        )
        with pytest.raises(InvariantViolation) as excinfo:
            simulator.step()
        assert excinfo.value.node == router.node
        assert "double-booked" in str(excinfo.value) or "not busy" in str(excinfo.value)


class TestFlitConservation:
    def test_lost_buffered_flit_caught_within_one_cycle(self):
        network, simulator = warmed_fr(seed=4, load=0.5)
        target = None
        for router in network.routers:
            for scheduler in router.input_sched:
                for departure, entries in scheduler.departures.items():
                    if departure > simulator.cycle + 2 and entries:
                        target = (scheduler, entries[0][0])
                        break
        assert target is not None, "expected a buffered flit awaiting departure"
        scheduler, buffer_index = target
        pool = scheduler.pool
        pool._contents[buffer_index] = None  # the flit silently vanishes
        pool._free.append(buffer_index)  # occupancy is derived, so it stays consistent
        with pytest.raises(InvariantViolation) as excinfo:
            simulator.step()
        assert "conservation" in str(excinfo.value)

    def test_phantom_packet_caught(self):
        network, simulator = warmed_fr(seed=9)
        assert network.packets_in_flight, "expected traffic in flight"
        packet_id = next(iter(network.packets_in_flight))
        del network.packets_in_flight[packet_id]  # accounting loses a packet
        with pytest.raises(InvariantViolation) as excinfo:
            simulator.step()
        assert "conservation" in str(excinfo.value)


class TestVCInvariants:
    def test_credit_counter_corruption_caught(self):
        network, simulator = warmed_vc(seed=1)
        router = next(r for r in network.routers if r.connected_outputs)
        port = router.connected_outputs[0]
        router.out_credits[port][0] -= 1  # a credit evaporates
        with pytest.raises(InvariantViolation) as excinfo:
            simulator.step()
        assert excinfo.value.node == router.node

    def test_pool_counter_drift_caught(self):
        network, simulator = warmed_vc(seed=2)
        router = network.routers[0]
        router.pool_occupancy[0] += 1
        with pytest.raises(InvariantViolation) as excinfo:
            simulator.step()
        assert "occupancy" in str(excinfo.value)


class TestCheckerPlumbing:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            InvariantChecker(every=0)

    def test_interval_thins_sweeps(self):
        network = build_network(FR6, 0.2, seed=1)
        checker = InvariantChecker(every=4)
        Simulator(network, checker=checker).step(40)
        assert checker.checks_run == 10

    def test_violation_carries_location(self):
        error = InvariantViolation("boom", node=3, port=1, cycle=42)
        assert (error.node, error.port, error.cycle) == (3, 1, 42)
        assert "boom" in str(error)

    def test_simulator_without_checker_never_checks(self):
        network = build_network(FR6, 0.2, seed=1)
        simulator = Simulator(network)
        simulator.step(10)
        assert simulator.checker is None
