"""Tests for the pipelined link."""

import pytest

from repro.sim.link import Link, LinkOverflowError


class TestConstruction:
    def test_rejects_zero_delay(self):
        with pytest.raises(ValueError):
            Link(0)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            Link(1, width=0)


class TestDelivery:
    def test_single_item_arrives_after_delay(self):
        link = Link(4)
        link.send("flit", cycle=10)
        for cycle in range(10, 14):
            assert link.receive(cycle) == []
        assert link.receive(14) == ["flit"]

    def test_delay_one(self):
        link = Link(1)
        link.send("a", cycle=0)
        assert link.receive(0) == []
        assert link.receive(1) == ["a"]

    def test_arrivals_are_consumed(self):
        link = Link(1)
        link.send("a", cycle=0)
        assert link.receive(1) == ["a"]
        assert link.receive(1) == []

    def test_pipeline_full_occupancy(self):
        """A delay-d link carries d items in flight, one launched per cycle."""
        link = Link(3)
        for cycle in range(10):
            link.send(cycle, cycle)
            received = link.receive(cycle)
            if cycle >= 3:
                assert received == [cycle - 3]
            else:
                assert received == []

    def test_order_preserved_within_cycle(self):
        link = Link(2, width=3)
        link.send("x", 5)
        link.send("y", 5)
        link.send("z", 5)
        assert link.receive(7) == ["x", "y", "z"]

    def test_in_flight_count(self):
        link = Link(4)
        assert link.in_flight() == 0
        link.send("a", 0)
        link.send("b", 1)
        assert link.in_flight() == 2
        link.receive(4)
        assert link.in_flight() == 1


class TestWidth:
    def test_overflow_raises(self):
        link = Link(1, width=2)
        link.send("a", 0)
        link.send("b", 0)
        with pytest.raises(LinkOverflowError):
            link.send("c", 0)

    def test_width_resets_each_cycle(self):
        link = Link(1, width=1)
        link.send("a", 0)
        link.send("b", 1)  # fine: a new cycle
        assert link.receive(1) == ["a"]
        assert link.receive(2) == ["b"]

    def test_capacity_remaining(self):
        link = Link(1, width=2)
        assert link.capacity_remaining(0) == 2
        link.send("a", 0)
        assert link.capacity_remaining(0) == 1
        link.send("b", 0)
        assert link.capacity_remaining(0) == 0
        assert link.capacity_remaining(1) == 2
