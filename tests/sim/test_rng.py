"""Tests for the deterministic random source."""

import pytest

from repro.sim.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_spawn_is_deterministic(self):
        a = DeterministicRng(7).spawn(3)
        b = DeterministicRng(7).spawn(3)
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_spawn_children_independent(self):
        parent = DeterministicRng(7)
        a, b = parent.spawn(1), parent.spawn(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_seed_property(self):
        assert DeterministicRng(99).seed == 99


class TestDraws:
    def test_randint_bounds(self):
        rng = DeterministicRng(0)
        values = [rng.randint(3, 7) for _ in range(200)]
        assert min(values) >= 3
        assert max(values) <= 7
        assert set(values) == {3, 4, 5, 6, 7}

    def test_random_in_unit_interval(self):
        rng = DeterministicRng(0)
        for _ in range(100):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_chance_extremes(self):
        rng = DeterministicRng(0)
        assert not any(rng.chance(0.0) for _ in range(50))
        assert all(rng.chance(1.0) for _ in range(50))

    def test_chance_rate(self):
        rng = DeterministicRng(5)
        hits = sum(rng.chance(0.3) for _ in range(10_000))
        assert 2_700 < hits < 3_300

    def test_choice_single(self):
        rng = DeterministicRng(0)
        assert rng.choice([42]) == 42

    def test_choice_covers_options(self):
        rng = DeterministicRng(0)
        seen = {rng.choice("abc") for _ in range(100)}
        assert seen == {"a", "b", "c"}

    def test_shuffled_is_permutation(self):
        rng = DeterministicRng(0)
        original = list(range(10))
        shuffled = rng.shuffled(original)
        assert sorted(shuffled) == original
        assert original == list(range(10)), "input must not be mutated"

    def test_shuffled_varies(self):
        rng = DeterministicRng(0)
        results = {tuple(rng.shuffled(range(6))) for _ in range(50)}
        assert len(results) > 10

    def test_repr_mentions_seed(self):
        assert "123" in repr(DeterministicRng(123))
