"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables or figures, asserts
its qualitative shape (who wins, roughly by how much, where the knees fall)
and writes the regenerated rows to ``benchmarks/results/<name>.txt`` so the
numbers recorded in EXPERIMENTS.md can be traced to a run.

Benchmarks default to the ``quick`` measurement preset so the whole suite
finishes in tens of minutes on one core; set ``FRFC_BENCH_PRESET=standard``
(or ``paper``) for higher-fidelity runs of the same code paths.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Loads used for 5-flit latency-throughput curves (fractions of capacity).
LOADS_5FLIT = [0.10, 0.45, 0.63, 0.72, 0.80, 0.87]
#: Loads used for 21-flit curves (saturation comes earlier).
LOADS_21FLIT = [0.10, 0.40, 0.55, 0.62, 0.70]


@pytest.fixture(scope="session")
def preset() -> str:
    """Measurement preset for all benchmarks (env-overridable)."""
    return os.environ.get("FRFC_BENCH_PRESET", "quick")


@pytest.fixture(scope="session")
def record():
    """Write one benchmark's regenerated rows to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


def once(benchmark, function):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, iterations=1, rounds=1)
