"""Section 5 / Figure 10 ablation: buffer allocation at scheduling time
versus just before arrival.

Allocating at reservation time, without knowledge of future reservations,
forces flits to be transferred between buffers mid-residency; deferring the
choice to arrival eliminates transfers entirely (the at-arrival policy has
no transfer mechanism at all -- it never needs one).  The benchmark counts
the transfers the at-reservation policy would perform under load.
"""

from benchmarks.conftest import once
from repro.core.config import FRConfig
from repro.core.network import FRNetwork
from repro.sim.kernel import Simulator

CONFIG = FRConfig(
    data_buffers_per_input=6, control_vcs=2, buffer_allocation="at_reservation"
)
LOAD_RATE = 0.070  # ~71% of 8x8 capacity with 5-flit packets
CYCLES = 4_000


def test_at_reservation_policy_needs_transfers(benchmark, record):
    def run():
        network = FRNetwork(CONFIG, injection_rate=LOAD_RATE, seed=2)
        simulator = Simulator(network)
        network.set_measure_window(500, CYCLES)
        simulator.step(CYCLES)
        moved = sum(
            scheduler.flits_buffered
            for router in network.routers
            for scheduler in router.input_sched
        )
        return network.buffer_transfer_count(), moved

    transfers, buffered_flits = once(benchmark, run)
    rate = transfers / buffered_flits * 1000 if buffered_flits else 0.0
    record(
        "ablation_alloc_policy",
        "allocate-at-reservation policy under ~71% load (8x8, 5-flit pkts)\n"
        f"buffered flit residencies: {buffered_flits}\n"
        f"forced buffer transfers:   {transfers} ({rate:.1f} per 1000 residencies)\n"
        "allocate-at-arrival (the paper's policy): 0 by construction\n",
    )
    # Under contention the at-reservation policy really does need transfers.
    assert transfers > 0
