"""Section 5 ablation: one narrow control flit per data flit (d=1) versus a
wide control flit leading several data flits (d=4).

The trade the paper describes: with d=1 data flits never arrive before
their control flit and no schedule list is needed, but every control flit
pays a VCID; with d=4 the VCID is amortised (lower bandwidth overhead,
40% control-network load for 5-flit packets) at the cost of schedule-list
machinery and coarser scheduling.
"""

from benchmarks.conftest import once
from repro.core.config import FR6, FRConfig
from repro.harness.saturation import measure_throughput
from repro.overhead.bandwidth import fr_bandwidth

WIDE = FRConfig(data_buffers_per_input=6, control_vcs=2, data_flits_per_control=4)
LOAD = 0.65


def test_wide_control_flits(benchmark, record, preset):
    def run():
        narrow = measure_throughput(FR6, LOAD, seed=2, preset=preset)
        wide = measure_throughput(WIDE, LOAD, seed=2, preset=preset)
        return narrow, wide

    narrow, wide = once(benchmark, run)
    narrow_bw = fr_bandwidth(FR6, 5).bits_per_data_flit
    wide_bw = fr_bandwidth(WIDE, 5).bits_per_data_flit
    record(
        "ablation_wide_control",
        f"offered load {LOAD:.2f} of capacity, 5-flit packets\n"
        f"d=1 accepted {narrow:.3f}, bandwidth overhead {narrow_bw:.2f} bits/flit\n"
        f"d=4 accepted {wide:.3f}, bandwidth overhead {wide_bw:.2f} bits/flit\n",
    )
    # The bandwidth win is analytical and certain.
    assert wide_bw < narrow_bw
    # Throughput stays in the same ballpark -- wide flits are viable.
    assert wide >= narrow - 0.12
