"""Figure 7: sensitivity of FR6 to the scheduling horizon (16..128 cycles).

Shape claim: throughput is relatively insensitive to the horizon -- a
16-cycle horizon is within ~10% of optimum, and there is little gain beyond
32 cycles.
"""

from benchmarks.conftest import once
from repro.harness.figures import figure7

LOADS = [0.30, 0.60, 0.72, 0.80]


def test_figure7_horizon_insensitivity(benchmark, record, preset):
    result = once(
        benchmark,
        lambda: figure7(preset=preset, loads=LOADS, horizons=(16, 32, 64, 128)),
    )
    record("fig7_horizon", result.format())

    def deepest_stable(curve):
        stable = [p.offered_load for p in curve.points if not p.saturated]
        return max(stable) if stable else 0.0

    deepest = {curve.config_name: deepest_stable(curve) for curve in result.curves}
    h16 = deepest["FR6/s=16"]
    best = max(deepest.values())
    # A 16-cycle horizon stays within ~one load step of the optimum.
    assert best - h16 <= 0.13
    # Beyond 32 cycles there is no further gain in the stable region.
    assert deepest["FR6/s=128"] <= deepest["FR6/s=32"] + 0.09

    # Latency at a common mid load is also horizon-insensitive.
    mid = [curve.latency_at(0.60) for curve in result.curves]
    assert max(mid) - min(mid) < 0.25 * min(mid)
