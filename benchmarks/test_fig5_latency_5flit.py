"""Figure 5: latency vs offered traffic, 5-flit packets, fast control.

Shape claims reproduced (paper Section 4.1):

* FR has lower base latency than VC (27 vs 32 cycles, -15.6%);
* VC8 saturates around 63% of capacity, FR6 extends it to ~77%;
* FR6 with 6 buffers beats VC8 with 8 and approaches VC16 with 16.
"""

import math

from benchmarks.conftest import LOADS_5FLIT, once
from repro.harness.figures import figure5


def test_figure5_curves(benchmark, record, preset):
    result = once(benchmark, lambda: figure5(preset=preset, loads=LOADS_5FLIT))
    record("fig5_latency_5flit", result.format())

    vc8, vc16 = result.curve("VC8"), result.curve("VC16")
    fr6, fr13 = result.curve("FR6"), result.curve("FR13")

    # Base latency: FR below VC by roughly the paper's 15%.
    assert fr6.points[0].mean_latency < vc8.points[0].mean_latency
    saving = 1 - fr6.points[0].mean_latency / vc8.points[0].mean_latency
    assert 0.05 < saving < 0.30

    # VC8 cannot deliver 72% of capacity; FR6 can.
    def accepted_at(curve, load):
        candidates = [p for p in curve.points if abs(p.offered_load - load) < 0.01]
        return candidates[0].accepted_load if candidates else math.nan

    fr6_72 = accepted_at(fr6, 0.72)
    vc8_72 = accepted_at(vc8, 0.72)
    if not math.isnan(vc8_72):
        assert vc8_72 < 0.70
    if not math.isnan(fr6_72):
        assert fr6_72 > 0.69

    # At every common stable load, FR6 latency beats VC8's.
    for fr_point, vc_point in zip(fr6.points, vc8.points):
        if fr_point.saturated or vc_point.saturated:
            break
        assert fr_point.mean_latency < vc_point.mean_latency

    # FR13 extends throughput beyond FR6 (paper: 85% vs 77%).
    assert len(fr13.points) >= len(fr6.points)
