"""Figure 6: latency vs offered traffic with 21-flit packets.

Shape claims (paper Section 4.2):

* base latency drops from ~55 (VC) to ~46 (FR) cycles, about 16%;
* FR13 beats even VC32 on throughput (75% vs 65% in the paper);
* FR6's edge is tempered: with a pool small relative to the packet
  length, blocked packets pin buffers and turnaround cannot help.
"""

from benchmarks.conftest import LOADS_21FLIT, once
from repro.harness.figures import figure6


def test_figure6_curves(benchmark, record, preset):
    result = once(benchmark, lambda: figure6(preset=preset, loads=LOADS_21FLIT))
    record("fig6_latency_21flit", result.format())

    vc32 = result.curve("VC32")
    fr6, fr13 = result.curve("FR6"), result.curve("FR13")

    # Base latency saving around the paper's 16%.
    saving = 1 - fr13.points[0].mean_latency / vc32.points[0].mean_latency
    assert 0.05 < saving < 0.30

    # FR13 sustains loads at least as deep into the sweep as VC32.
    fr13_stable = [p.offered_load for p in fr13.points if not p.saturated]
    vc32_stable = [p.offered_load for p in vc32.points if not p.saturated]
    assert max(fr13_stable) >= max(vc32_stable)

    # The small-pool effect: FR6 saturates earlier than FR13.
    fr6_stable = [p.offered_load for p in fr6.points if not p.saturated]
    assert max(fr6_stable) <= max(fr13_stable)
