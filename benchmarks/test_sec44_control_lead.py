"""Section 4.4's control-lead study: under heavy load, control flits arrive
many cycles ahead of their data flits regardless of the injection lead (the
paper saw ~14 cycles with a 1-cycle lead vs ~15 with a 4-cycle lead at 77%
of capacity) -- congestion on the data network, not the injection offset,
creates the headroom for advance scheduling."""

from benchmarks.conftest import once
from repro.harness.figures import section44_control_lead


def test_section44_control_lead(benchmark, record, preset):
    result = once(
        benchmark, lambda: section44_control_lead(preset=preset, leads=(1, 4))
    )
    record("sec44_control_lead", result.format())

    lead1 = result.notes["lead=1 mean control lead (cycles)"]
    lead4 = result.notes["lead=4 mean control lead (cycles)"]
    assert lead1 is not None and lead4 is not None
    # Control races well ahead of data under load (the paper measured ~14
    # cycles at full fidelity; shorter quick-preset runs see less backlog)...
    assert lead1 > 4
    # ...and the injection offset contributes almost nothing to it.
    assert abs(lead4 - lead1) < 4
