"""Section 4.2's occupancy study: near saturation with 21-flit packets, a
mid-mesh FR6 buffer pool runs full a large fraction of the time (the paper
tracked ~40%) while VC8 saturates with its pool full under ~5% of cycles --
flit-reservation keeps buffers *working*, VC leaves them idling in
turnaround."""

from benchmarks.conftest import once
from repro.harness.figures import section42_occupancy


def test_section42_occupancy(benchmark, record, preset):
    result = once(benchmark, lambda: section42_occupancy(preset=preset))
    record("sec42_occupancy", result.format())

    fr_full = result.notes["FR6 fraction of cycles pool full"]
    vc_full = result.notes["VC8 fraction of cycles pool full"]
    assert fr_full is not None and vc_full is not None
    # The qualitative gap: FR's pool is full an order of magnitude more often.
    assert fr_full > 0.15
    assert vc_full < 0.15
    assert fr_full > 2 * vc_full
