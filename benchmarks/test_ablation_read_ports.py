"""Footnote 7 ablation: single- versus multi-ported input buffers.

The baseline input reservation table has one "Buffer Out" row -- one buffer
read per input per cycle.  A multi-ported buffer (two rows) lets one input
feed two outputs in the same cycle, removing a scheduling constraint.  The
paper predicts a higher-performance router; the effect is real but small,
since simultaneous same-input departures are rare under uniform traffic.
"""

from dataclasses import replace

from benchmarks.conftest import once
from repro.core.config import FR6
from repro.harness.experiment import run_experiment

LOAD = 0.72


def test_multiported_input_buffers(benchmark, record, preset):
    def run():
        single = run_experiment(FR6, LOAD, seed=2, preset=preset)
        multi = run_experiment(
            replace(FR6, input_read_ports=2), LOAD, seed=2, preset=preset
        )
        return single, multi

    single, multi = once(benchmark, run)
    record(
        "ablation_read_ports",
        f"offered load {LOAD:.2f} of capacity, 5-flit packets (FR6)\n"
        f"1 read port:  latency {single.mean_latency:.1f}, "
        f"accepted {single.accepted_load:.3f}\n"
        f"2 read ports: latency {multi.mean_latency:.1f}, "
        f"accepted {multi.accepted_load:.3f}\n",
    )
    # Multi-porting can only help (never hurt) latency and throughput.
    assert multi.mean_latency <= single.mean_latency + 1.5
    assert multi.accepted_load >= single.accepted_load - 0.02
