"""Section 5 ablation: per-flit versus all-or-nothing scheduling.

With wide control flits (one control flit leading d=4 data flits),
per-flit scheduling lets each successfully scheduled data flit move on and
free its buffer, while all-or-nothing holds every led flit until the whole
group fits downstream.  The paper argues per-flit therefore performs
better; under load the difference shows up as latency (all-or-nothing
stalls whole groups waiting for d simultaneous downstream buffers).

The per-flit policy runs with this repository's control-flit-splitting
deadlock-avoidance extension (see FRRouter._process_flit), without which
partially scheduled wide control flits deadlock behind their own advanced
data flits -- the open cross-dependency the paper's Section 5 flags.
"""

from dataclasses import replace

from benchmarks.conftest import once
from repro.core.config import FRConfig
from repro.harness.experiment import run_experiment

WIDE = FRConfig(
    data_buffers_per_input=6,
    control_vcs=2,
    data_flits_per_control=4,
    control_flits_per_cycle=2,
)
LOAD = 0.72


def test_per_flit_beats_all_or_nothing(benchmark, record, preset):
    def run():
        per_flit = run_experiment(WIDE, LOAD, seed=2, preset=preset)
        all_or_nothing = run_experiment(
            replace(WIDE, scheduling_policy="all_or_nothing"),
            LOAD,
            seed=2,
            preset=preset,
        )
        return per_flit, all_or_nothing

    per_flit, all_or_nothing = once(benchmark, run)
    record(
        "ablation_all_or_nothing",
        f"offered load {LOAD:.2f} of capacity, d=4, 6-buffer pools\n"
        f"per-flit:       latency {per_flit.mean_latency:.1f}, "
        f"accepted {per_flit.accepted_load:.3f}\n"
        f"all-or-nothing: latency {all_or_nothing.mean_latency:.1f}, "
        f"accepted {all_or_nothing.accepted_load:.3f}\n",
    )
    assert not per_flit.saturated
    # Both deliver the offered load here; per-flit does it with visibly
    # lower latency because groups trickle through scarce buffers.
    assert per_flit.mean_latency < all_or_nothing.mean_latency
    assert per_flit.accepted_load >= all_or_nothing.accepted_load - 0.02
