"""Table 1: storage overhead of virtual-channel and flit-reservation flow
control.  Analytical -- regenerated exactly, and checked cell-for-cell
against the published numbers."""

from benchmarks.conftest import once
from repro.harness.tables import format_table1, table1


def test_table1_storage(benchmark, record):
    rows = once(benchmark, table1)
    text = format_table1(rows)
    record("table1_storage", text)

    # Published bits-per-node totals (Table 1, bottom rows).
    assert rows["VC8"]["bits_per_node"] == 10452
    assert rows["VC16"]["bits_per_node"] == 21040
    assert rows["VC32"]["bits_per_node"] == 42352
    assert rows["FR6"]["bits_per_node"] == 10762
    # FR13 follows the paper's general formula (the printed total, 19960,
    # contains an arithmetic slip in the input-reservation-table cell).
    assert rows["FR13"]["bits_per_node"] == 20600

    # The storage pairing that frames the whole evaluation.
    assert abs(rows["FR6"]["bits_per_node"] - rows["VC8"]["bits_per_node"]) < 400
    assert rows["FR6"]["flits_per_input_channel"] == 8.41
