"""Table 2: bandwidth overhead per data flit.  Analytical."""

import pytest

from benchmarks.conftest import once
from repro.harness.tables import format_table2, table2


def test_table2_bandwidth(benchmark, record):
    rows = once(benchmark, table2)
    record("table2_bandwidth", format_table2(rows))

    # The paper's headline: FR pays 5 extra bits (the log2(32) arrival-time
    # stamp), about 2% of a 256-bit data flit.
    for fr_name, vc_name in (("FR6", "VC8"), ("FR13", "VC16")):
        extra = rows[fr_name]["bits_per_data_flit"] - rows[vc_name]["bits_per_data_flit"]
        assert extra == pytest.approx(5.0)
        assert extra / 256 == pytest.approx(0.0195, abs=0.001)
    assert rows["FR6"]["arrival_times"] == 5.0
