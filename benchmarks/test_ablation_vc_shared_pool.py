"""Section 5 ablation: virtual channels with a shared buffer pool.

The paper: "We simulated virtual-channel flow control with a shared buffer
pool among its virtual channels [TamFra92], but saw no improvement in
network throughput" -- i.e. the buffer pool is *not* what gives
flit-reservation flow control its edge; the advance scheduling is.
"""

from dataclasses import replace

from benchmarks.conftest import once
from repro.baselines.vc.config import VC8
from repro.harness.saturation import measure_throughput

LOADS = [0.55, 0.63, 0.70]


def test_shared_pool_gives_no_throughput_gain(benchmark, record, preset):
    def run():
        rows = []
        for load in LOADS:
            private = measure_throughput(VC8, load, seed=2, preset=preset)
            pooled = measure_throughput(
                replace(VC8, buffer_sharing="pool"), load, seed=2, preset=preset
            )
            rows.append((load, private, pooled))
        return rows

    rows = once(benchmark, run)
    text = ["VC8 private per-VC queues vs shared pool (accepted/capacity)"]
    for load, private, pooled in rows:
        text.append(f"offered {load:.2f}: private {private:.3f}  pooled {pooled:.3f}")
    record("ablation_vc_shared_pool", "\n".join(text))

    # No meaningful improvement from pooling at or beyond VC8's saturation.
    for _, private, pooled in rows:
        assert pooled <= private + 0.05
