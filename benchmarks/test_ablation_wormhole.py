"""Related-work ablation: wormhole flow control (Dally & Seitz 1986).

Wormhole holds each physical channel for the whole duration of a packet, so
with the same 8 buffers per input it saturates well below 2-VC virtual-
channel flow control, which in turn sits below flit-reservation -- the
historical progression the paper's Section 2 narrates.
"""

from benchmarks.conftest import once
from repro.baselines.vc.config import VC8
from repro.baselines.wormhole.network import WormholeConfig
from repro.core.config import FR6
from repro.harness.saturation import measure_throughput

LOAD = 0.70


def test_wormhole_vc_fr_progression(benchmark, record, preset):
    def run():
        wormhole = measure_throughput(
            WormholeConfig(buffers_per_input=8), LOAD, seed=2, preset=preset
        )
        vc = measure_throughput(VC8, LOAD, seed=2, preset=preset)
        fr = measure_throughput(FR6, LOAD, seed=2, preset=preset)
        return wormhole, vc, fr

    wormhole, vc, fr = once(benchmark, run)
    record(
        "ablation_wormhole",
        f"accepted throughput at {LOAD:.2f} offered (fraction of capacity)\n"
        f"wormhole (WH8): {wormhole:.3f}\n"
        f"virtual-channel (VC8): {vc:.3f}\n"
        f"flit-reservation (FR6): {fr:.3f}\n",
    )
    assert wormhole < vc
    assert fr >= vc - 0.01
    assert fr > wormhole + 0.02
