"""Figure 9: FR with 1-cycle leading control vs VC on 1-cycle wires.

Shape claims (paper Section 4.4):

* no base-latency reduction -- the 1-cycle data lag equals VC's 1-cycle
  routing/arbitration latency (both ~15 cycles);
* under moderate-to-high load FR is faster (19 vs 21 cycles at 50%);
* the throughput improvement matches the fast-control case (FR6 beyond
  VC8's saturation).
"""

import pytest

from benchmarks.conftest import LOADS_5FLIT, once
from repro.harness.figures import figure9


def test_figure9_leading_vs_vc(benchmark, record, preset):
    result = once(benchmark, lambda: figure9(preset=preset, loads=LOADS_5FLIT))
    record("fig9_leading_vs_vc", result.format())

    fr6 = result.curve("FR6/lead=1")
    vc8, vc16 = result.curve("VC8"), result.curve("VC16")

    # Equal base latencies (the paper reads ~15 cycles at near-zero load;
    # the sweep's lowest point, 10% load, adds ~2 cycles of queueing --
    # the 0.05-load check lives in tests/integration/test_paper_calibration).
    assert 13 <= fr6.points[0].mean_latency <= 19.5
    assert 13 <= vc8.points[0].mean_latency <= 19.5
    assert fr6.points[0].mean_latency == pytest.approx(
        vc8.points[0].mean_latency, abs=2.5
    )

    # FR is faster under load.
    assert fr6.latency_at(0.45) < vc8.latency_at(0.45)

    # And sustains deeper loads than VC8.
    fr6_stable = max(p.offered_load for p in fr6.points if not p.saturated)
    vc8_stable = max(p.offered_load for p in vc8.points if not p.saturated)
    assert fr6_stable >= vc8_stable
