"""Table 3: the experimental summary -- base latency, latency at 50% of
capacity, and saturation throughput for every configuration.

The benchmark regenerates the 5-flit rows of both regimes (the 21-flit
fast-control rows are covered by the Figure 6 benchmark) and checks the
ordering relations the paper's summary shows:

=================  =====  =====  =====  =====  =====
(paper, 5-flit)     FR6   FR13    VC8   VC16   VC32
base latency         27     27     32     32     32
latency @ 50%        33     33     39     38     38
throughput          77%    85%    63%    80%    85%
=================  =====  =====  =====  =====  =====
"""

import pytest

from benchmarks.conftest import once
from repro.harness.tables import table3


def test_table3_summary(benchmark, record, preset):
    result = once(
        benchmark,
        lambda: table3(preset=preset, packet_lengths=(5,), include_leading=True),
    )
    record("table3_summary", result.format())

    fr6 = result.find("fast", "FR6", 5)
    fr13 = result.find("fast", "FR13", 5)
    vc8 = result.find("fast", "VC8", 5)
    vc16 = result.find("fast", "VC16", 5)
    vc32 = result.find("fast", "VC32", 5)

    # Base latencies: FR ~27, VC ~32, FR wins.
    assert fr6.base_latency == pytest.approx(27, abs=3)
    assert vc8.base_latency == pytest.approx(32, abs=4)
    assert fr6.base_latency < vc8.base_latency
    assert fr13.base_latency == pytest.approx(fr6.base_latency, abs=2)

    # Latency at 50% capacity: FR ~33, VC ~39.
    assert fr6.latency_at_50pct == pytest.approx(33, abs=4)
    assert vc8.latency_at_50pct == pytest.approx(39, abs=5)

    # Saturation ordering: VC8 < FR6 <= VC16 <= FR13 ~ VC32.
    assert vc8.saturation == pytest.approx(0.63, abs=0.06)
    assert fr6.saturation == pytest.approx(0.77, abs=0.06)
    assert fr13.saturation == pytest.approx(0.85, abs=0.06)
    assert vc8.saturation < fr6.saturation
    assert fr6.saturation <= vc16.saturation + 0.04
    assert fr13.saturation >= vc16.saturation

    # Leading-control rows: equal base latency, FR ahead at 50%.
    lead_fr6 = result.find("leading", "FR6", 5)
    lead_vc8 = result.find("leading", "VC8", 5)
    assert lead_fr6.base_latency == pytest.approx(15, abs=3)
    assert lead_fr6.base_latency == pytest.approx(lead_vc8.base_latency, abs=2.5)
    assert lead_fr6.latency_at_50pct < lead_vc8.latency_at_50pct
    assert lead_fr6.saturation > lead_vc8.saturation
