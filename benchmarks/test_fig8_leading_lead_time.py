"""Figure 8: leading control with 1-, 2- and 4-cycle leads, 1-cycle wires.

Shape claims (paper Section 4.4):

* saturation throughput is independent of the lead time -- the lead is
  manufactured by data-network congestion, not by the injection offset;
* deferring data up to 4 cycles barely moves overall latency.
"""

from benchmarks.conftest import once
from repro.harness.figures import figure8

LOADS = [0.30, 0.55, 0.70, 0.78]


def test_figure8_lead_time_independence(benchmark, record, preset):
    result = once(
        benchmark, lambda: figure8(preset=preset, loads=LOADS, leads=(1, 2, 4))
    )
    record("fig8_leading_lead_time", result.format())

    def deepest_stable(curve):
        stable = [p.offered_load for p in curve.points if not p.saturated]
        return max(stable) if stable else 0.0

    deepest = [deepest_stable(curve) for curve in result.curves]
    # Throughput independent of lead time (within one load step).
    assert max(deepest) - min(deepest) <= 0.09

    # Latency at a mid load differs by at most a few cycles across leads.
    mid_latencies = [curve.latency_at(0.55) for curve in result.curves]
    assert max(mid_latencies) - min(mid_latencies) < 5.0
